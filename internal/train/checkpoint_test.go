package train_test

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"warplda/internal/corpus"
	"warplda/internal/sampler"
	"warplda/internal/train"
)

// writeTestCheckpoint trains a few iterations and returns the raw bytes
// of a valid single-file checkpoint plus the (corpus, config) it
// belongs to. Live Warp checkpoints are written as sharded directories
// (core.Warp is sampler.Sharded), so the single-file envelope under
// test is assembled by hand here — it remains the on-disk format of
// legacy checkpoints and of non-sharded samplers, and Read must keep
// rejecting every class of damage to it.
func writeTestCheckpoint(t *testing.T) ([]byte, *checkpointEnv) {
	t.Helper()
	env := &checkpointEnv{c: testCorpus(20), cfg: testCfg(6)}
	w := newWarp(t, env.c, env.cfg)
	res, err := train.Run(w, env.c, env.cfg, train.Options{Iters: 3, EvalEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	var state bytes.Buffer
	if err := w.StateTo(&state); err != nil {
		t.Fatal(err)
	}
	ck := &train.Checkpoint{
		Sampler:     w.Name(),
		Cfg:         env.cfg,
		Iter:        res.Iter,
		Trace:       res.Run,
		Fingerprint: train.CorpusFingerprint(env.c),
		State:       state.Bytes(),
	}
	var buf bytes.Buffer
	if _, err := ck.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), env
}

type checkpointEnv struct {
	c   *corpus.Corpus
	cfg sampler.Config
}

// TestCheckpointCorruption mirrors model_io_test.go's table: every
// class of on-disk damage must be rejected at Read time — resume never
// trains on garbage.
func TestCheckpointCorruption(t *testing.T) {
	raw, _ := writeTestCheckpoint(t)

	if _, err := train.Read(bytes.NewReader(raw)); err != nil {
		t.Fatalf("pristine checkpoint rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty file", func(b []byte) []byte { return nil }},
		{"truncated magic", func(b []byte) []byte { return b[:4] }},
		{"bad magic", func(b []byte) []byte {
			b[0] ^= 0xff
			return b
		}},
		{"wrong version", func(b []byte) []byte {
			b[len("WARPCKPT")] = 0x7f
			return b
		}},
		{"truncated body", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncated trailer", func(b []byte) []byte { return b[:len(b)-2] }},
		{"flipped header byte", func(b []byte) []byte {
			b[len(b)/4] ^= 0x10
			return b
		}},
		{"flipped state byte", func(b []byte) []byte {
			b[len(b)-64] ^= 0x01
			return b
		}},
		{"flipped trailer", func(b []byte) []byte {
			b[len(b)-1] ^= 0x01
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := tc.mutate(append([]byte(nil), raw...))
			if _, err := train.Read(bytes.NewReader(mut)); err == nil {
				t.Fatal("corrupt checkpoint accepted")
			}
		})
	}
}

// A checkpoint whose envelope is intact (valid CRC) but whose inner
// state blob is damaged must fail at restore time and leave the target
// sampler untouched and usable.
func TestCheckpointBadStateBlobFailsCleanly(t *testing.T) {
	raw, env := writeTestCheckpoint(t)
	ck, err := train.Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}

	for name, mutate := range map[string]func([]byte) []byte{
		"truncated state": func(b []byte) []byte { return b[:len(b)-8] },
		"state dims for a different run": func(b []byte) []byte {
			// Flip a payload byte so the embedded global counts no longer
			// match the assignments.
			b2 := append([]byte(nil), b...)
			b2[5+8+8] ^= 1
			return b2
		},
	} {
		t.Run(name, func(t *testing.T) {
			bad := *ck
			bad.State = mutate(append([]byte(nil), ck.State...))
			// Round-trip through disk: the envelope re-checksums cleanly, so
			// only the state-blob validation can catch it.
			path := filepath.Join(t.TempDir(), train.DefaultFileName)
			if _, err := bad.WriteFile(path); err != nil {
				t.Fatal(err)
			}
			loaded, err := train.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			target := newWarp(t, env.c, env.cfg)
			before := sampler.CopyAssignments(target.Assignments())
			if _, err := train.Run(target, env.c, env.cfg, train.Options{Iters: 6, ResumeFrom: loaded}); err == nil {
				t.Fatal("damaged state blob accepted")
			}
			if !reflect.DeepEqual(before, target.Assignments()) {
				t.Fatal("failed resume mutated the sampler")
			}
			target.Iterate() // must still be usable
		})
	}
}

// Length fields read before the CRC trailer can vouch for them must be
// bounds-checked before they size an allocation: a corrupt checkpoint
// fails with an error, it does not OOM the trainer.
func TestCheckpointHugeLengthsFailFast(t *testing.T) {
	t.Run("trace count", func(t *testing.T) {
		var buf bytes.Buffer
		buf.WriteString("WARPCKPT\x01")
		e := sampler.NewEnc(&buf)
		e.Str("WarpLDA")
		e.Int(8)         // K
		e.F64(0.1)       // alpha
		e.F64(0.01)      // beta
		e.Int(2)         // M
		e.U64(42)        // seed
		e.Int(1)         // threads
		e.Int(0)         // no alpha vector
		e.Int(1 << 61)   // iter (absurd, but only a counter)
		e.Int(0)         // elapsed
		e.Str("WarpLDA") // trace name
		e.Int(1 << 40)   // trace point count: would be a 40 TB make()
		if err := e.Err(); err != nil {
			t.Fatal(err)
		}
		if _, err := train.Read(bytes.NewReader(buf.Bytes())); err == nil {
			t.Fatal("absurd trace length accepted")
		}
	})
	t.Run("alpha vector via huge K", func(t *testing.T) {
		var buf bytes.Buffer
		buf.WriteString("WARPCKPT\x01")
		e := sampler.NewEnc(&buf)
		e.Str("WarpLDA")
		e.Int(1 << 40) // K (absurd)
		e.F64(0.1)
		e.F64(0.01)
		e.Int(2)
		e.U64(42)
		e.Int(1)
		e.Int(1)       // alpha vector present...
		e.Int(1 << 40) // ...claiming 2^40 entries
		if err := e.Err(); err != nil {
			t.Fatal(err)
		}
		if _, err := train.Read(bytes.NewReader(buf.Bytes())); err == nil {
			t.Fatal("absurd alpha-vector length accepted")
		}
	})
	t.Run("stream ends before trailer", func(t *testing.T) {
		raw, _ := writeTestCheckpoint(t)
		ck, err := train.Read(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		// A hand-built envelope cut off right after the fingerprint: the
		// state-plus-trailer section is missing entirely.
		var buf bytes.Buffer
		buf.WriteString("WARPCKPT\x01")
		e := sampler.NewEnc(&buf)
		e.Str(ck.Sampler)
		e.Int(ck.Cfg.K)
		e.F64(ck.Cfg.Alpha)
		e.F64(ck.Cfg.Beta)
		e.Int(ck.Cfg.M)
		e.U64(ck.Cfg.Seed)
		e.Int(ck.Cfg.Threads)
		e.Int(0)
		e.Int(ck.Iter)
		e.Int(int(ck.Elapsed))
		e.Str(ck.Trace.Sampler)
		e.Int(0) // no trace points
		e.U64(uint64(ck.Fingerprint))
		if err := e.Err(); err != nil {
			t.Fatal(err)
		}
		if _, err := train.Read(bytes.NewReader(buf.Bytes())); err == nil {
			t.Fatal("checkpoint without state/trailer accepted")
		}
	})
}

func TestLoadMissing(t *testing.T) {
	if _, err := train.Load(filepath.Join(t.TempDir(), "nope.ckpt")); err == nil {
		t.Fatal("missing checkpoint accepted")
	}
}

func TestPublishPath(t *testing.T) {
	good := []struct{ spec, path, name string }{
		{"models/news", filepath.Join("models", "news.bin"), "news"},
		{"/srv/lda/models/nytimes-k100", "/srv/lda/models/nytimes-k100.bin", "nytimes-k100"},
		{"models//news", filepath.Join("models", "news.bin"), "news"},
	}
	for _, tc := range good {
		path, name, err := train.PublishPath(tc.spec)
		if err != nil {
			t.Errorf("PublishPath(%q): %v", tc.spec, err)
			continue
		}
		if path != tc.path || name != tc.name {
			t.Errorf("PublishPath(%q) = (%q, %q), want (%q, %q)", tc.spec, path, name, tc.path, tc.name)
		}
	}
	for _, spec := range []string{"", "news", "models/news.bin", "models/", "models/.."} {
		if _, _, err := train.PublishPath(spec); err == nil {
			t.Errorf("PublishPath(%q) accepted", spec)
		}
	}
}
