package train

// Writer side of incremental model refresh. A DeltaChain tracks the
// last-published count state of one publish target and, per checkpoint
// interval, emits a WARPDLT delta file (internal/fsio) carrying only
// the changed C_wk cells plus the new C_k vector, chained by
// fingerprint and generation. The serving registry discovers the
// files next to the published base snapshot, validates the chain, and
// folds them into the live engine without a full reload.
//
// On-disk naming: generation g of model <name> in directory <dir> is
//
//	<dir>/<name>.dlt.<g>          (g = 1, 2, ... since the last base)
//
// A full (re)publish of <name> resets the chain: the trainer removes
// every <name>.dlt.* BEFORE repointing the base, so a watching
// registry can never fold a stale delta into a fresh base — at worst
// it sees the old base with no deltas (keeps serving the folded state
// it already built), then the repointed base (full reload, chain reset).

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"warplda/internal/fsio"
)

// DeltaPath resolves a publish spec ("<dir>/<name>") and generation to
// the delta file path <dir>/<name>.dlt.<gen>.
func DeltaPath(spec string, gen int64) (string, error) {
	if gen < 1 {
		return "", fmt.Errorf("train: delta generation %d, want >= 1", gen)
	}
	base, name, err := PublishPath(spec)
	if err != nil {
		return "", err
	}
	return filepath.Join(filepath.Dir(base), fmt.Sprintf("%s.dlt.%d", name, gen)), nil
}

// deltaSuffixRE matches the ".dlt.<gen>" tail of a delta file name,
// applied after stripping the model name prefix.
var deltaSuffixRE = regexp.MustCompile(`^\.dlt\.([0-9]+)$`)

// DeltaFile is one discovered delta of a publish target.
type DeltaFile struct {
	Gen  int64
	Path string
}

// ListDeltaFiles returns the delta files of model name in dir, sorted
// by ascending generation. Files whose generation suffix does not
// parse are ignored (they are not ours).
func ListDeltaFiles(dir, name string) ([]DeltaFile, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("train: listing deltas: %w", err)
	}
	var out []DeltaFile
	for _, de := range des {
		if de.IsDir() || !strings.HasPrefix(de.Name(), name) {
			continue
		}
		m := deltaSuffixRE.FindStringSubmatch(de.Name()[len(name):])
		if m == nil {
			continue
		}
		gen, err := strconv.ParseInt(m[1], 10, 64)
		if err != nil || gen < 1 {
			continue
		}
		out = append(out, DeltaFile{Gen: gen, Path: filepath.Join(dir, de.Name())})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Gen < out[j].Gen })
	return out, nil
}

// RemoveDeltaFiles deletes every delta file of a publish target,
// returning the removed paths. Callers MUST invoke it before
// republishing the base snapshot (rebase): delete-then-repoint is what
// keeps a concurrently polling registry from pairing a fresh base with
// stale deltas.
func RemoveDeltaFiles(spec string) ([]string, error) {
	base, name, err := PublishPath(spec)
	if err != nil {
		return nil, err
	}
	files, err := ListDeltaFiles(filepath.Dir(base), name)
	if err != nil {
		return nil, err
	}
	var removed []string
	for _, f := range files {
		if err := os.Remove(f.Path); err != nil {
			return removed, fmt.Errorf("train: removing delta: %w", err)
		}
		removed = append(removed, f.Path)
	}
	return removed, nil
}

// DeltaChain emits the delta files of one publish target. It retains a
// private copy of the last-published counts (the diff base), the chain
// fingerprint, and the next generation number. Not safe for concurrent
// use; the training loop publishes from one goroutine.
type DeltaChain struct {
	spec   string
	v, k   int
	gen    int64
	fp     uint64
	prevCw []int32
	prevCk []int64
}

// NewDeltaChain starts a chain at the given base state — the counts of
// the full snapshot just published under spec. The slices are copied.
func NewDeltaChain(spec string, v, k int, cw []int32, ck []int64) (*DeltaChain, error) {
	if _, _, err := PublishPath(spec); err != nil {
		return nil, err
	}
	if v <= 0 || k <= 0 || len(cw) != v*k || len(ck) != k {
		return nil, fmt.Errorf("train: delta chain base dims V=%d K=%d with %d/%d counts", v, k, len(cw), len(ck))
	}
	return &DeltaChain{
		spec: spec, v: v, k: k,
		fp:     fsio.ModelFingerprint(v, k, cw, ck),
		prevCw: append([]int32(nil), cw...),
		prevCk: append([]int64(nil), ck...),
	}, nil
}

// Gen returns the number of deltas published so far (the generation of
// the newest delta file; 0 right after the base).
func (dc *DeltaChain) Gen() int64 { return dc.gen }

// DeltaResult describes one published delta.
type DeltaResult struct {
	Path  string
	Gen   int64
	Cells int
	Bytes int64
}

// Publish diffs the given counts against the chain's base, writes the
// next-generation delta file atomically, and advances the chain. A
// no-change snapshot still publishes (zero cells; the generation,
// iteration, and log likelihood advance). On error the chain state is
// unchanged and no file is installed.
func (dc *DeltaChain) Publish(cw []int32, ck []int64, iter int64, logLik float64) (DeltaResult, error) {
	if len(cw) != dc.v*dc.k || len(ck) != dc.k {
		return DeltaResult{}, fmt.Errorf("train: delta publish dims %d/%d against a %d×%d chain", len(cw), len(ck), dc.v, dc.k)
	}
	d := &fsio.ModelDelta{
		V: dc.v, K: dc.k, Gen: dc.gen + 1,
		BaseFP: dc.fp, Iter: iter, LogLik: logLik,
		Cells: fsio.DiffCounts(dc.v, dc.k, dc.prevCw, cw),
		Ck:    append([]int64(nil), ck...),
	}
	d.NewFP = fsio.ChainFingerprint(d.BaseFP, d.Gen, d.Cells, d.Ck)
	path, err := DeltaPath(dc.spec, d.Gen)
	if err != nil {
		return DeltaResult{}, err
	}
	n, err := fsio.AtomicWriteFile(path, ".warplda-dlt-*", d.WriteDelta)
	if err != nil {
		return DeltaResult{}, fmt.Errorf("train: writing delta %s: %w", path, err)
	}
	dc.gen = d.Gen
	dc.fp = d.NewFP
	copy(dc.prevCw, cw)
	copy(dc.prevCk, ck)
	return DeltaResult{Path: path, Gen: d.Gen, Cells: len(d.Cells), Bytes: n}, nil
}
