// Package mapreduce implements the paper's Section 5.1 fallback design:
// "A basic implementation of this framework is MapReduce ... useful for
// industrial users who want to build a simple distributed O(1) LDA on
// top of the existing MapReduce framework."
//
// It provides a small in-process MapReduce engine (map → shuffle →
// reduce over goroutine workers) and the two-job pattern from the paper:
// VisitByRow is (1) aggregate entries by row, (2) apply the user
// function to each row and re-emit entries; VisitByColumn is the same
// keyed by column. The engine exists to demonstrate and test that the
// WarpLDA computational pattern really does fit MapReduce — the
// dedicated implementation in internal/sparse is what the samplers use.
package mapreduce

import (
	"sort"
	"sync"
)

// KV is one key-value pair flowing through a job.
type KV struct {
	Key   int64
	Value []int32
}

// MapFunc transforms one input pair into zero or more output pairs.
type MapFunc func(in KV, emit func(KV))

// ReduceFunc folds all values of one key into zero or more output pairs.
type ReduceFunc func(key int64, values [][]int32, emit func(KV))

// Run executes one MapReduce job over the inputs with the given number
// of parallel workers (≥ 1). Output order is deterministic: sorted by
// key, with each key's reducer emissions in order.
func Run(inputs []KV, m MapFunc, r ReduceFunc, workers int) []KV {
	if workers < 1 {
		workers = 1
	}

	// Map phase: workers process disjoint slices, emitting locally.
	type shard struct{ out []KV }
	shards := make([]shard, workers)
	var wg sync.WaitGroup
	chunk := (len(inputs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if lo > len(inputs) {
			lo = len(inputs)
		}
		if hi > len(inputs) {
			hi = len(inputs)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			emit := func(kv KV) { shards[w].out = append(shards[w].out, kv) }
			for _, in := range inputs[lo:hi] {
				m(in, emit)
			}
		}(w, lo, hi)
	}
	wg.Wait()

	// Shuffle: group by key.
	groups := map[int64][][]int32{}
	for _, s := range shards {
		for _, kv := range s.out {
			groups[kv.Key] = append(groups[kv.Key], kv.Value)
		}
	}
	keys := make([]int64, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })

	// Reduce phase: workers own disjoint key ranges; emissions are
	// collected per key to keep the output deterministic.
	perKey := make([][]KV, len(keys))
	var rg sync.WaitGroup
	kchunk := (len(keys) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * kchunk
		hi := lo + kchunk
		if lo > len(keys) {
			lo = len(keys)
		}
		if hi > len(keys) {
			hi = len(keys)
		}
		rg.Add(1)
		go func(lo, hi int) {
			defer rg.Done()
			for i := lo; i < hi; i++ {
				k := keys[i]
				emit := func(kv KV) { perKey[i] = append(perKey[i], kv) }
				r(k, groups[k], emit)
			}
		}(lo, hi)
	}
	rg.Wait()

	var out []KV
	for _, kvs := range perKey {
		out = append(out, kvs...)
	}
	return out
}

// Entry is one sparse-matrix entry in transit: its cell plus payload.
// The payload layout matches internal/sparse (z followed by proposals).
type Entry struct {
	Row, Col int32
	Data     []int32
}

// cellKey packs (row, col) into a shuffle key.
func cellKey(row, col int32) int64 { return int64(row)<<32 | int64(uint32(col)) }

// VisitByRow runs the paper's two-step MapReduce VisitByRow: entries are
// keyed by row, each row's entries are handed to fn (which may mutate
// the payloads), and the updated entries are re-emitted. fn receives the
// row id and that row's entries sorted by column. fn is invoked
// concurrently for different rows and must be safe for that (rows are
// disjoint, so mutating only the received entries is always safe).
func VisitByRow(entries []Entry, fn func(row int32, es []Entry), workers int) []Entry {
	return visit(entries, fn, workers, true)
}

// VisitByColumn is VisitByRow keyed by column (entries sorted by row).
func VisitByColumn(entries []Entry, fn func(col int32, es []Entry), workers int) []Entry {
	return visit(entries, fn, workers, false)
}

func visit(entries []Entry, fn func(int32, []Entry), workers int, byRow bool) []Entry {
	// Step 1 (map): emit each entry keyed by row (or column), packing the
	// other coordinate into the value so it survives the shuffle.
	inputs := make([]KV, len(entries))
	for i, e := range entries {
		key := int64(e.Row)
		other := e.Col
		if !byRow {
			key = int64(e.Col)
			other = e.Row
		}
		val := make([]int32, 0, len(e.Data)+1)
		val = append(val, other)
		val = append(val, e.Data...)
		inputs[i] = KV{Key: key, Value: val}
	}
	identity := func(in KV, emit func(KV)) { emit(in) }

	// Step 2 (reduce): rebuild the row group, apply fn, re-emit entries.
	reduce := func(key int64, values [][]int32, emit func(KV)) {
		es := make([]Entry, len(values))
		for i, v := range values {
			if byRow {
				es[i] = Entry{Row: int32(key), Col: v[0], Data: v[1:]}
			} else {
				es[i] = Entry{Row: v[0], Col: int32(key), Data: v[1:]}
			}
		}
		sort.SliceStable(es, func(a, b int) bool {
			if byRow {
				return es[a].Col < es[b].Col
			}
			return es[a].Row < es[b].Row
		})
		fn(int32(key), es)
		for _, e := range es {
			emit(KV{Key: cellKey(e.Row, e.Col), Value: append([]int32{e.Row, e.Col}, e.Data...)})
		}
	}

	out := Run(inputs, identity, reduce, workers)
	result := make([]Entry, len(out))
	for i, kv := range out {
		result[i] = Entry{Row: kv.Value[0], Col: kv.Value[1], Data: kv.Value[2:]}
	}
	return result
}
