package mapreduce

import (
	"reflect"
	"sort"
	"sync"
	"testing"

	"warplda/internal/corpus"
	"warplda/internal/eval"
	"warplda/internal/rng"
)

func TestRunWordCount(t *testing.T) {
	// Classic word count: inputs are (wordID, [1]) pairs.
	inputs := []KV{
		{Key: 3, Value: []int32{1}},
		{Key: 1, Value: []int32{1}},
		{Key: 3, Value: []int32{1}},
		{Key: 2, Value: []int32{1}},
		{Key: 3, Value: []int32{1}},
	}
	identity := func(in KV, emit func(KV)) { emit(in) }
	count := func(key int64, values [][]int32, emit func(KV)) {
		emit(KV{Key: key, Value: []int32{int32(len(values))}})
	}
	for _, workers := range []int{1, 2, 7} {
		out := Run(inputs, identity, count, workers)
		want := []KV{
			{Key: 1, Value: []int32{1}},
			{Key: 2, Value: []int32{1}},
			{Key: 3, Value: []int32{3}},
		}
		if !reflect.DeepEqual(out, want) {
			t.Fatalf("workers=%d: %v", workers, out)
		}
	}
}

func TestRunMapCanFanOut(t *testing.T) {
	inputs := []KV{{Key: 0, Value: []int32{5}}}
	fan := func(in KV, emit func(KV)) {
		for i := int32(0); i < in.Value[0]; i++ {
			emit(KV{Key: int64(i), Value: []int32{i}})
		}
	}
	passthrough := func(key int64, values [][]int32, emit func(KV)) {
		for _, v := range values {
			emit(KV{Key: key, Value: v})
		}
	}
	out := Run(inputs, fan, passthrough, 3)
	if len(out) != 5 {
		t.Fatalf("fan-out produced %d pairs", len(out))
	}
}

func randomEntries(seed uint64, n, rows, cols, stride int) []Entry {
	r := rng.New(seed)
	es := make([]Entry, n)
	for i := range es {
		data := make([]int32, stride)
		for j := range data {
			data[j] = int32(r.Intn(100))
		}
		es[i] = Entry{Row: int32(r.Intn(rows)), Col: int32(r.Intn(cols)), Data: data}
	}
	return es
}

func entryMultiset(es []Entry) map[string]int {
	m := map[string]int{}
	for _, e := range es {
		key := string(rune(e.Row)) + "/" + string(rune(e.Col))
		for _, d := range e.Data {
			key += ":" + string(rune(d))
		}
		m[key]++
	}
	return m
}

func TestVisitByRowGroupsCorrectly(t *testing.T) {
	es := randomEntries(1, 200, 10, 12, 2)
	var mu sync.Mutex // fn runs concurrently across rows
	seenRows := map[int32]int{}
	out := VisitByRow(es, func(row int32, group []Entry) {
		mu.Lock()
		seenRows[row] += len(group)
		mu.Unlock()
		for _, e := range group {
			if e.Row != row {
				t.Fatalf("entry with row %d in group %d", e.Row, row)
			}
		}
		for i := 1; i < len(group); i++ {
			if group[i].Col < group[i-1].Col {
				t.Fatal("row group not sorted by column")
			}
		}
	}, 4)
	total := 0
	for _, n := range seenRows {
		total += n
	}
	if total != len(es) {
		t.Fatalf("visited %d entries, want %d", total, len(es))
	}
	if !reflect.DeepEqual(entryMultiset(out), entryMultiset(es)) {
		t.Fatal("entries changed across a read-only visit")
	}
}

func TestVisitByColumnMutationsSurvive(t *testing.T) {
	es := randomEntries(2, 150, 8, 9, 1)
	out := VisitByColumn(es, func(col int32, group []Entry) {
		for _, e := range group {
			e.Data[0] = col * 1000
		}
	}, 3)
	if len(out) != len(es) {
		t.Fatalf("lost entries: %d vs %d", len(out), len(es))
	}
	for _, e := range out {
		if e.Data[0] != e.Col*1000 {
			t.Fatalf("mutation lost: col %d data %d", e.Col, e.Data[0])
		}
	}
}

// mrWarpIteration runs one WarpLDA iteration (Alg 2, M=1) entirely on the
// MapReduce engine — the paper's Section 5.1 claim that the framework
// maps onto MapReduce, demonstrated end to end.
func mrWarpIteration(entries []Entry, k int, alpha, beta, betaBar float64, ck []int32, seed uint64, workers int) []Entry {
	// Word phase: finish doc-proposal chains, redraw word proposals.
	// Group functions run concurrently, so each gets its own RNG seeded
	// deterministically by its key.
	entries = VisitByColumn(entries, func(col int32, group []Entry) {
		r := rng.New(seed*2654435761 + uint64(col))
		cw := make(map[int32]int32)
		for _, e := range group {
			cw[e.Data[0]]++
		}
		for _, e := range group {
			s, prop := e.Data[0], e.Data[1]
			if prop != s {
				pi := (float64(cw[prop]) + beta) / (float64(cw[s]) + beta) *
					(float64(ck[s]) + betaBar) / (float64(ck[prop]) + betaBar)
				if pi >= 1 || r.Float64() < pi {
					e.Data[0] = prop
				}
			}
		}
		cw = make(map[int32]int32)
		for _, e := range group {
			cw[e.Data[0]]++
		}
		lw := len(group)
		pCount := float64(lw) / (float64(lw) + float64(k)*beta)
		for _, e := range group {
			if r.Float64() < pCount {
				e.Data[1] = group[r.Intn(lw)].Data[0]
			} else {
				e.Data[1] = int32(r.Intn(k))
			}
		}
	}, workers)

	// Doc phase: finish word-proposal chains, redraw doc proposals.
	return VisitByRow(entries, func(row int32, group []Entry) {
		r := rng.New(seed*40503 + uint64(row))
		cd := make(map[int32]int32)
		for _, e := range group {
			cd[e.Data[0]]++
		}
		for _, e := range group {
			s, prop := e.Data[0], e.Data[1]
			if prop != s {
				pi := (float64(cd[prop]) + alpha) / (float64(cd[s]) + alpha) *
					(float64(ck[s]) + betaBar) / (float64(ck[prop]) + betaBar)
				if pi >= 1 || r.Float64() < pi {
					e.Data[0] = prop
				}
			}
		}
		ld := len(group)
		pCount := float64(ld) / (float64(ld) + alpha*float64(k))
		for _, e := range group {
			if r.Float64() < pCount {
				e.Data[1] = group[r.Intn(ld)].Data[0]
			} else {
				e.Data[1] = int32(r.Intn(k))
			}
		}
	}, workers)
}

func TestWarpLDAOnMapReduceConverges(t *testing.T) {
	c, err := corpus.GenerateLDA(corpus.SyntheticConfig{
		D: 100, V: 120, K: 4, MeanLen: 30, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	const k = 4
	alpha, beta := 50.0/k, 0.01
	betaBar := beta * float64(c.V)
	r := rng.New(9)

	var entries []Entry
	ck := make([]int32, k)
	for d, doc := range c.Docs {
		for _, w := range doc {
			z := int32(r.Intn(k))
			entries = append(entries, Entry{Row: int32(d), Col: w, Data: []int32{z, z}})
			ck[z]++
		}
	}
	ll := func(es []Entry) float64 {
		z := make([][]int32, len(c.Docs))
		byDoc := map[int32][]Entry{}
		for _, e := range es {
			byDoc[e.Row] = append(byDoc[e.Row], e)
		}
		for d := range c.Docs {
			// Order within doc does not affect the bag-of-words metric,
			// but z must pair with the right word: rebuild docs sorted too.
			group := byDoc[int32(d)]
			sort.SliceStable(group, func(a, b int) bool { return group[a].Col < group[b].Col })
			zd := make([]int32, len(group))
			for i, e := range group {
				zd[i] = e.Data[0]
			}
			z[d] = zd
		}
		// Sort the corpus docs the same way for consistent pairing.
		sorted := &corpus.Corpus{V: c.V, Docs: make([][]int32, len(c.Docs))}
		for d, doc := range c.Docs {
			cp := append([]int32(nil), doc...)
			sort.Slice(cp, func(a, b int) bool { return cp[a] < cp[b] })
			sorted.Docs[d] = cp
		}
		return eval.LogJoint(sorted, z, k, alpha, beta)
	}

	before := ll(entries)
	for it := 0; it < 20; it++ {
		entries = mrWarpIteration(entries, k, alpha, beta, betaBar, ck, uint64(it)+1, 3)
		// M-step: refresh ck.
		for i := range ck {
			ck[i] = 0
		}
		for _, e := range entries {
			ck[e.Data[0]]++
		}
	}
	after := ll(entries)
	if after <= before {
		t.Fatalf("MapReduce WarpLDA did not converge: %.1f -> %.1f", before, after)
	}
}
