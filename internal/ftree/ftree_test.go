package ftree

import (
	"math"
	"testing"
	"testing/quick"

	"warplda/internal/rng"
)

func TestTotalTracksUpdates(t *testing.T) {
	tr := New(10)
	tr.Set(3, 2)
	tr.Set(7, 5)
	if got := tr.Total(); math.Abs(got-7) > 1e-12 {
		t.Fatalf("Total = %g, want 7", got)
	}
	tr.Set(3, 0)
	if got := tr.Total(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Total = %g, want 5", got)
	}
	tr.Add(7, -1.5)
	if got := tr.Total(); math.Abs(got-3.5) > 1e-12 {
		t.Fatalf("Total = %g, want 3.5", got)
	}
}

func TestGetRoundTrips(t *testing.T) {
	tr := New(33) // non-power-of-two
	r := rng.New(1)
	want := make([]float64, 33)
	for i := range want {
		want[i] = r.Float64() * 4
		tr.Set(i, want[i])
	}
	for i, w := range want {
		if got := tr.Get(i); math.Abs(got-w) > 1e-12 {
			t.Fatalf("Get(%d) = %g, want %g", i, got, w)
		}
	}
}

func TestBuildMatchesSets(t *testing.T) {
	w := []float64{1, 0, 3, 2, 0.5}
	a := New(5)
	a.Build(w)
	b := New(5)
	for i, x := range w {
		b.Set(i, x)
	}
	if math.Abs(a.Total()-b.Total()) > 1e-12 {
		t.Fatalf("totals differ: %g vs %g", a.Total(), b.Total())
	}
	for i := range w {
		if math.Abs(a.Get(i)-b.Get(i)) > 1e-12 {
			t.Fatalf("leaf %d differs", i)
		}
	}
}

func TestSampleDistribution(t *testing.T) {
	w := []float64{1, 4, 0, 2, 3}
	tr := New(5)
	tr.Build(w)
	r := rng.New(42)
	const n = 100000
	counts := make([]int, 5)
	for i := 0; i < n; i++ {
		counts[tr.Sample(r)]++
	}
	if counts[2] != 0 {
		t.Fatalf("zero-weight leaf sampled %d times", counts[2])
	}
	total := 10.0
	for i, x := range w {
		p := x / total
		want := p * n
		sd := math.Sqrt(n * p * (1 - p))
		if math.Abs(float64(counts[i])-want) > 6*sd+3 {
			t.Errorf("leaf %d: %d draws, want ~%.0f", i, counts[i], want)
		}
	}
}

func TestSampleAfterIncrementalUpdates(t *testing.T) {
	tr := New(8)
	tr.Build([]float64{1, 1, 1, 1, 1, 1, 1, 1})
	// Kill all but leaf 5.
	for i := 0; i < 8; i++ {
		if i != 5 {
			tr.Set(i, 0)
		}
	}
	r := rng.New(7)
	for i := 0; i < 1000; i++ {
		if got := tr.Sample(r); got != 5 {
			t.Fatalf("Sample = %d, want 5", got)
		}
	}
}

func TestSingleLeaf(t *testing.T) {
	tr := New(1)
	tr.Set(0, 3)
	r := rng.New(9)
	for i := 0; i < 100; i++ {
		if tr.Sample(r) != 0 {
			t.Fatal("single-leaf tree sampled nonzero")
		}
	}
}

func TestNewZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestNegativeSetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set(-1) did not panic")
		}
	}()
	New(4).Set(0, -1)
}

func TestBuildLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(4).Build([]float64{1, 2})
}

// Property: Total equals sum of leaves after arbitrary update sequences,
// and Sample always returns an in-range leaf with positive weight.
func TestInvariantsProperty(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw%50) + 1
		r := rng.New(seed)
		tr := New(k)
		w := make([]float64, k)
		for op := 0; op < 200; op++ {
			i := r.Intn(k)
			x := r.Float64() * 3
			w[i] = x
			tr.Set(i, x)
		}
		var sum float64
		for _, x := range w {
			sum += x
		}
		if math.Abs(tr.Total()-sum) > 1e-9*(1+sum) {
			return false
		}
		if sum > 0 {
			for i := 0; i < 50; i++ {
				leaf := tr.Sample(r)
				if leaf < 0 || leaf >= k {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSet(b *testing.B) {
	tr := New(1 << 16)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Set(i&(1<<16-1), r.Float64())
	}
}

// Named to stay out of the BenchmarkSample* family the bench-regression
// CI lane gates: a nanosecond-scale micro-bench at -benchtime=3x is
// pure timer noise and would flap a 25% throughput gate.
func BenchmarkFTreeDraw(b *testing.B) {
	tr := New(1 << 16)
	r := rng.New(1)
	for i := 0; i < 1<<16; i++ {
		tr.Set(i, r.Float64())
	}
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += tr.Sample(r)
	}
	_ = sink
}
