// Package ftree implements the F+ tree used by the F+LDA baseline
// (Yu et al., WWW 2015): a complete binary tree over K weights that
// supports point updates and drawing an index with probability
// proportional to its weight, both in O(log K).
//
// Unlike an alias table (O(K) rebuild, O(1) draw), the F+ tree is the
// right structure when weights change after every token — F+LDA updates
// the word-topic term of its factorization incrementally as it sweeps a
// word's tokens.
package ftree

import "warplda/internal/rng"

// Tree is an F+ tree over leaves 0..K-1. The zero value is unusable; use
// New.
type Tree struct {
	k     int
	base  int       // first leaf index in node array; power of two ≥ k
	nodes []float64 // 1-indexed heap: nodes[1] is the root sum
}

// New returns a tree with all k weights zero.
func New(k int) *Tree {
	if k <= 0 {
		panic("ftree: New with non-positive k")
	}
	base := 1
	for base < k {
		base <<= 1
	}
	return &Tree{k: k, base: base, nodes: make([]float64, 2*base)}
}

// K returns the number of leaves.
func (t *Tree) K() int { return t.k }

// Total returns the sum of all weights.
func (t *Tree) Total() float64 { return t.nodes[1] }

// Get returns the weight of leaf k.
func (t *Tree) Get(k int) float64 { return t.nodes[t.base+k] }

// Set assigns weight w (≥ 0) to leaf k and repairs the path to the root.
func (t *Tree) Set(k int, w float64) {
	if w < 0 {
		panic("ftree: negative weight")
	}
	i := t.base + k
	delta := w - t.nodes[i]
	for ; i >= 1; i >>= 1 {
		t.nodes[i] += delta
	}
}

// Add adds delta to leaf k's weight. The result must stay ≥ 0 up to
// rounding; tiny negative residue is clamped on read by Sample.
func (t *Tree) Add(k int, delta float64) {
	i := t.base + k
	for ; i >= 1; i >>= 1 {
		t.nodes[i] += delta
	}
}

// Build sets all weights at once in O(K), replacing the current contents.
// len(w) must equal K.
func (t *Tree) Build(w []float64) {
	if len(w) != t.k {
		panic("ftree: Build length mismatch")
	}
	for i := range t.nodes {
		t.nodes[i] = 0
	}
	copy(t.nodes[t.base:], w)
	for i := t.base - 1; i >= 1; i-- {
		t.nodes[i] = t.nodes[2*i] + t.nodes[2*i+1]
	}
}

// Sample draws a leaf with probability proportional to its weight using
// one uniform variate from r. Total() must be positive.
func (t *Tree) Sample(r *rng.RNG) int {
	u := r.Float64() * t.nodes[1]
	i := 1
	for i < t.base {
		left := t.nodes[2*i]
		if u < left {
			i = 2 * i
		} else {
			u -= left
			i = 2*i + 1
		}
	}
	k := i - t.base
	if k >= t.k { // numerical spill into zero-padded leaves
		k = t.k - 1
	}
	return k
}
