package hist

import (
	"math"
	"sync"
	"testing"
)

// TestBucketRoundTrip pins the log-linear invariant: every value maps
// to a bucket whose lower bound is at most the value and within the
// guaranteed relative error (one sub-bucket width) below it, and
// bucket indexes are monotone in the value.
func TestBucketRoundTrip(t *testing.T) {
	values := []int64{0, 1, 2, 31, 32, 33, 63, 64, 65, 100, 1000, 12345,
		1 << 20, (1 << 20) + 12345, 1 << 40, (1 << 44) - 1}
	prevIdx := -1
	for _, v := range values {
		i := bucketIndex(v)
		if i < prevIdx {
			t.Errorf("bucketIndex not monotone at %d: %d after %d", v, i, prevIdx)
		}
		prevIdx = i
		low := bucketLow(i)
		if low > v {
			t.Errorf("bucketLow(%d) = %d > value %d", i, low, v)
		}
		if v >= subCount {
			// Relative error bound: v - low < v / subCount * 2 (one
			// sub-bucket at v's magnitude is at most v/subCount*2 wide).
			width := float64(v) / subCount * 2
			if float64(v-low) > width {
				t.Errorf("value %d bucketed to %d: error %d exceeds width %g", v, low, v-low, width)
			}
		} else if low != v {
			t.Errorf("linear range: value %d bucketed to %d, want exact", v, low)
		}
	}
}

// TestBucketEdges walks every power-of-two edge in range checking
// index/low consistency.
func TestBucketEdges(t *testing.T) {
	for mag := subBits; mag <= maxMagnitude; mag++ {
		v := int64(1) << uint(mag)
		i := bucketIndex(v)
		if got := bucketLow(i); got != v {
			t.Fatalf("mag %d: bucketLow(bucketIndex(%d)) = %d", mag, v, got)
		}
		if i2 := bucketIndex(v - 1); i2 >= i {
			t.Fatalf("mag %d: index(%d)=%d not below index(%d)=%d", mag, v-1, i2, v, i)
		}
	}
	// Clamp: values past the top magnitude land in the last bucket.
	if i := bucketIndex(math.MaxInt64); i != numBuckets-1 {
		t.Fatalf("MaxInt64 bucketed to %d, want %d", i, numBuckets-1)
	}
}

func TestQuantilesUniform(t *testing.T) {
	h := New()
	const n = 100000
	for i := 1; i <= n; i++ {
		h.Record(int64(i))
	}
	if h.Count() != n {
		t.Fatalf("count %d", h.Count())
	}
	if h.Max() != n {
		t.Fatalf("max %d", h.Max())
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.50, n * 0.50}, {0.90, n * 0.90}, {0.95, n * 0.95}, {0.99, n * 0.99}} {
		got := float64(h.Quantile(tc.q))
		// The estimate is ≤-biased by at most one sub-bucket (~2/32).
		if got > tc.want || got < tc.want*(1-2.0/subCount)-1 {
			t.Errorf("q%.2f = %g, want within one sub-bucket below %g", tc.q, got, tc.want)
		}
	}
	if m := h.Mean(); math.Abs(m-(n+1)/2.0) > 0.5 {
		t.Errorf("mean %g, want %g", m, (n+1)/2.0)
	}
}

func TestQuantileEmptyAndExtremes(t *testing.T) {
	h := New()
	if h.Quantile(0.99) != 0 || h.Count() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	h.Record(7)
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if got := h.Quantile(q); got != 7 {
			t.Errorf("single-value q%g = %d, want 7", q, got)
		}
	}
	h2 := New()
	h2.Record(-5) // clamps to 0
	if h2.Quantile(0.5) != 0 || h2.Max() != 0 {
		t.Error("negative value did not clamp to 0")
	}
}

// TestConcurrentRecord exercises the lock-free recording under the
// race detector: total count and sum must be exact.
func TestConcurrentRecord(t *testing.T) {
	h := New()
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count %d, want %d", h.Count(), workers*per)
	}
	if h.Max() != workers*per-1 {
		t.Fatalf("max %d, want %d", h.Max(), workers*per-1)
	}
	s := h.Summary()
	if s.Count != workers*per || s.P50 == 0 || s.P99 < s.P50 || s.Max < s.P99 {
		t.Fatalf("summary inconsistent: %+v", s)
	}
}
