// Package hist is a fixed-memory log-linear histogram for latency
// recording on hot request paths, in the HdrHistogram family: values
// are bucketed by power-of-two magnitude, each magnitude split into 32
// linear sub-buckets, so any recorded value is off by at most 1/32
// (~3.2%) of itself — tight enough to gate tail latencies while the
// whole histogram stays a few KiB regardless of how many values it has
// absorbed.
//
// Recording is lock-free (one atomic add per sample) and safe for
// concurrent use; reads (Quantile, Count, …) take a consistent-enough
// snapshot for monitoring without stopping writers. The value unit is
// the caller's choice — the serve path and loadgen both record
// microseconds.
package hist

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// subBits is the log2 of the linear sub-buckets per power-of-two
// magnitude; it fixes the histogram's relative error at 2^-subBits.
const subBits = 5

const subCount = 1 << subBits

// maxMagnitude covers values up to 2^44 (≈ 200 days in microseconds),
// far beyond any plausible request latency; larger values clamp into
// the top bucket rather than being dropped.
const maxMagnitude = 44

const numBuckets = (maxMagnitude - subBits + 2) * subCount

// Histogram records non-negative int64 values with bounded relative
// error. The zero value is NOT ready to use; call New.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// New returns an empty histogram.
func New() *Histogram { return &Histogram{} }

// bucketIndex maps a value to its bucket. Values < subCount land in
// the exact linear range (error 0); above it, the top subBits bits
// under the leading one select the sub-bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subCount {
		return int(v)
	}
	mag := bits.Len64(uint64(v)) - 1 // position of the leading one, >= subBits
	if mag > maxMagnitude {
		return numBuckets - 1
	}
	sub := int((v >> (uint(mag) - subBits)) & (subCount - 1))
	return (mag-subBits+1)*subCount + sub
}

// bucketLow returns the lowest value mapping to bucket i, which is
// also what Quantile reports for it (a ≤-biased estimate; the true
// value is < bucketLow(i+1), one sub-bucket width above).
func bucketLow(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	mag := i/subCount - 1 + subBits
	sub := i % subCount
	return (int64(1) << uint(mag)) | int64(sub)<<(uint(mag)-subBits)
}

// Record adds one observation.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Max returns the largest recorded value (exact, not bucketed), or 0
// when empty.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the arithmetic mean of recorded values, or 0 when
// empty.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an estimate of the q-quantile (q in [0,1]) of the
// recorded values: the lower bound of the bucket holding the q·count-th
// observation, so the estimate is within one sub-bucket width (≤ ~3.2%)
// below the true value. Returns 0 on an empty histogram; Quantile(1)
// returns the exact observed max.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q >= 1 {
		return h.max.Load()
	}
	if q < 0 {
		q = 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < numBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return bucketLow(i)
		}
	}
	return h.max.Load()
}

// Snapshot is a point-in-time summary of a histogram, shaped for JSON
// reports (loadgen's LOAD_<sha>.json, the serve /stats endpoint). All
// values are in the recorder's unit.
type Snapshot struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

// Summary returns the standard quantile snapshot.
func (h *Histogram) Summary() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}
