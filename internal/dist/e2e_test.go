package dist

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"warplda/internal/cluster"
	"warplda/internal/corpus"
	"warplda/internal/eval"
	"warplda/internal/sampler"
)

// e2eCorpus is shared by the end-to-end tests: big enough that two
// converged chains land within the elastic log-likelihood tolerance of
// each other, small enough to keep the race-enabled runs fast.
func e2eCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	c, err := corpus.GenerateLDA(corpus.SyntheticConfig{
		D: 300, V: 200, K: 5, MeanLen: 50, Alpha: 0.1, Beta: 0.05, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func e2eConfig() sampler.Config {
	cfg := sampler.PaperDefaults(5)
	cfg.M = 2
	cfg.Seed = 1234
	return cfg
}

// referenceLL trains the in-process distributed sampler on the same
// corpus, config, and iteration budget and returns its log likelihood.
func referenceLL(t *testing.T, c *corpus.Corpus, cfg sampler.Config, p, iters int) float64 {
	t.Helper()
	d, err := cluster.NewDistributed(c, cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < iters; i++ {
		d.Iterate()
	}
	return eval.LogJoint(c, d.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
}

// requireWithinElasticTolerance matches internal/cluster's elastic
// restore bound: two independently evolved chains on the same corpus
// must agree on log likelihood within 5%.
func requireWithinElasticTolerance(t *testing.T, got, want float64) {
	t.Helper()
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("log likelihood = %v", got)
	}
	if rel := math.Abs(got-want) / math.Abs(want); rel > 0.05 {
		t.Fatalf("log likelihood %v vs reference %v: relative gap %.4f > 0.05", got, want, rel)
	}
}

// testCoordinator builds a loopback coordinator with test-scale
// heartbeat timings.
func testCoordinator(t *testing.T, c *corpus.Corpus, cfg sampler.Config, iters, minWorkers int) *Coordinator {
	t.Helper()
	co, err := NewCoordinator(CoordinatorConfig{
		Addr:              "127.0.0.1:0",
		Corpus:            c,
		Cfg:               cfg,
		Iters:             iters,
		MinWorkers:        minWorkers,
		CheckpointDir:     t.TempDir(),
		CheckpointEvery:   4,
		CheckpointKeep:    2,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      10 * time.Second,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return co
}

func testWorkerConfig(t *testing.T, addr, id string) WorkerConfig {
	return WorkerConfig{
		Coordinator:  addr,
		ID:           id,
		DialTimeout:  2 * time.Second,
		RetryBackoff: 50 * time.Millisecond,
		MaxBackoff:   500 * time.Millisecond,
		MaxRetries:   200,
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 10 * time.Second,
		Logf:         t.Logf,
	}
}

// TestTwoWorkersMatchInProcess is the acceptance criterion: a
// coordinator plus two workers over loopback TCP reach a log likelihood
// within the elastic tolerance of the single-process distributed
// sampler on the same corpus, seed, and iteration budget.
func TestTwoWorkersMatchInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-goroutine training run")
	}
	c := e2eCorpus(t)
	cfg := e2eConfig()
	const iters = 20
	want := referenceLL(t, c, cfg, 2, iters)

	co := testCoordinator(t, c, cfg, iters, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	workerErr := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workerErr[i] = RunWorker(ctx, testWorkerConfig(t, co.Addr(), fmt.Sprintf("w%d", i)))
		}(i)
	}
	run, err := co.Serve(ctx)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	wg.Wait()
	for i, err := range workerErr {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
	if len(run.Points) == 0 {
		t.Fatal("no evaluation points in trace")
	}
	last := run.Points[len(run.Points)-1]
	if last.Iter != iters {
		t.Fatalf("final trace point at iteration %d, want %d", last.Iter, iters)
	}
	requireWithinElasticTolerance(t, last.LogLik, want)
}

// TestWorkerDeathElasticRecovery kills one of two workers mid-run and
// starts a replacement under a new identity: the coordinator must abort
// the epoch, reform from the last committed checkpoint without operator
// intervention, and still finish within the elastic tolerance.
func TestWorkerDeathElasticRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-goroutine training run")
	}
	c := e2eCorpus(t)
	cfg := e2eConfig()
	const iters = 24
	want := referenceLL(t, c, cfg, 2, iters)

	var logMu sync.Mutex
	var logLines []string
	logf := func(format string, args ...any) {
		line := fmt.Sprintf(format, args...)
		logMu.Lock()
		logLines = append(logLines, line)
		logMu.Unlock()
		t.Log(line)
	}
	co, err := NewCoordinator(CoordinatorConfig{
		Addr: "127.0.0.1:0", Corpus: c, Cfg: cfg,
		Iters: iters, MinWorkers: 2,
		CheckpointDir: t.TempDir(), CheckpointEvery: 3, CheckpointKeep: 2,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      10 * time.Second,
		Logf:              logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	var wg sync.WaitGroup

	// The victim runs under its own context; cancelling it severs the
	// connection mid-run — from the coordinator's side indistinguishable
	// from a crash.
	victimCtx, killVictim := context.WithCancel(ctx)
	defer killVictim()
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := RunWorker(victimCtx, testWorkerConfig(t, co.Addr(), "victim"))
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("victim: %v", err)
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := RunWorker(ctx, testWorkerConfig(t, co.Addr(), "survivor")); err != nil {
			t.Errorf("survivor: %v", err)
		}
	}()

	// Kill the victim once training is demonstrably under way, then
	// bring up the replacement.
	wg.Add(1)
	go func() {
		defer wg.Done()
		deadline := time.Now().Add(time.Minute)
		for time.Now().Before(deadline) {
			logMu.Lock()
			started := false
			for _, l := range logLines {
				if strings.Contains(l, "log likelihood") {
					started = true
					break
				}
			}
			logMu.Unlock()
			if started {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		killVictim()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := RunWorker(ctx, testWorkerConfig(t, co.Addr(), "replacement")); err != nil {
				t.Errorf("replacement: %v", err)
			}
		}()
	}()

	run, err := co.Serve(ctx)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	wg.Wait()
	if len(run.Points) == 0 {
		t.Fatal("no evaluation points in trace")
	}
	last := run.Points[len(run.Points)-1]
	if last.Iter != iters {
		t.Fatalf("final trace point at iteration %d, want %d", last.Iter, iters)
	}
	requireWithinElasticTolerance(t, last.LogLik, want)

	logMu.Lock()
	defer logMu.Unlock()
	reformed := false
	for _, l := range logLines {
		if strings.Contains(l, "reforming from last checkpoint") {
			reformed = true
			break
		}
	}
	if !reformed {
		t.Error("coordinator never reformed after the worker was killed; the failure was not exercised")
	}
}

// TestLateJoinerTriggersReform starts training on one worker and adds a
// second mid-run: the coordinator must fold it in at the next sync
// point, repartitioning across both through elastic resume.
func TestLateJoinerTriggersReform(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-goroutine training run")
	}
	c := e2eCorpus(t)
	cfg := e2eConfig()
	const iters = 16
	want := referenceLL(t, c, cfg, 1, iters)

	var logMu sync.Mutex
	var logLines []string
	logf := func(format string, args ...any) {
		line := fmt.Sprintf(format, args...)
		logMu.Lock()
		logLines = append(logLines, line)
		logMu.Unlock()
		t.Log(line)
	}
	co, err := NewCoordinator(CoordinatorConfig{
		Addr: "127.0.0.1:0", Corpus: c, Cfg: cfg,
		Iters: iters, MinWorkers: 1,
		CheckpointDir: t.TempDir(), CheckpointEvery: 3, CheckpointKeep: 2,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      10 * time.Second,
		Logf:              logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := RunWorker(ctx, testWorkerConfig(t, co.Addr(), "first")); err != nil {
			t.Errorf("first: %v", err)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Wait for the run to produce its first evaluation before joining,
		// so the join genuinely lands mid-training.
		deadline := time.Now().Add(time.Minute)
		for time.Now().Before(deadline) {
			logMu.Lock()
			started := false
			for _, l := range logLines {
				if strings.Contains(l, "log likelihood") {
					started = true
					break
				}
			}
			logMu.Unlock()
			if started {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err := RunWorker(ctx, testWorkerConfig(t, co.Addr(), "joiner")); err != nil {
			t.Errorf("joiner: %v", err)
		}
	}()

	run, err := co.Serve(ctx)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	wg.Wait()
	last := run.Points[len(run.Points)-1]
	if last.Iter != iters {
		t.Fatalf("final trace point at iteration %d, want %d", last.Iter, iters)
	}
	requireWithinElasticTolerance(t, last.LogLik, want)

	logMu.Lock()
	defer logMu.Unlock()
	twoWorkerEpoch := false
	for _, l := range logLines {
		if strings.Contains(l, ": 2 workers, resuming") {
			twoWorkerEpoch = true
			break
		}
	}
	if !twoWorkerEpoch {
		t.Error("no epoch ever formed with 2 workers; the late join was not exercised")
	}
}
