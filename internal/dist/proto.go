// Message payload schemas. Payloads are encoded with the same
// little-endian length-prefixed codec as sampler state (sampler.Enc /
// sampler.Dec); the two shard-bearing messages (Assign, ShardState)
// end with a raw WARPSHRD "dshd" stream — the exact bytes ShardTo
// writes into checkpoint shard files — so shard state needs no second
// serialization format on the wire.
package dist

import (
	"bytes"
	"fmt"

	"warplda/internal/sampler"
)

// ProtoVersion is the protocol revision carried in the handshake; a
// coordinator refuses workers speaking a different revision.
const ProtoVersion = 1

// Phase identifiers inside Block / PhaseDone / Barrier messages.
const (
	PhaseWord = 0
	PhaseDoc  = 1
)

// Hello is the worker's handshake: its protocol revision and its
// stable identity. Reconnecting with the same ID is idempotent
// re-registration — the coordinator treats it as the same worker
// returning, not a new member.
type Hello struct {
	Version int
	ID      string
}

// Encode serializes the message payload.
func (m *Hello) Encode() []byte {
	var b bytes.Buffer
	e := sampler.NewEnc(&b)
	e.Int(m.Version)
	e.Str(m.ID)
	return b.Bytes()
}

// DecodeHello parses a Hello payload.
func DecodeHello(p []byte) (*Hello, error) {
	d := sampler.NewDec(bytes.NewReader(p))
	m := &Hello{Version: d.Int(), ID: d.Str("worker id", 256)}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if m.ID == "" {
		return nil, fmt.Errorf("dist: empty worker id")
	}
	return m, nil
}

// Assign hands a worker its place in a new epoch: the topology (slot,
// worker count), the sampler configuration and corpus dimensions it
// needs to run phase bodies and validate its shard, the routing tables
// (row and column owner maps), the block granularity of the pipelined
// exchange, and finally the worker's token-shard state as a raw dshd
// stream.
type Assign struct {
	Epoch, Slot, P, Iter int
	K                    int
	Alpha, Beta          float64
	M                    int
	Seed                 uint64
	V, NumDocs           int
	NumTokens            int
	BlockTokens          int
	Rows, Cols           []int32
	Shard                []byte // raw dshd stream, trailing
}

// Encode serializes the message payload.
func (m *Assign) Encode() []byte {
	var b bytes.Buffer
	e := sampler.NewEnc(&b)
	e.Int(m.Epoch)
	e.Int(m.Slot)
	e.Int(m.P)
	e.Int(m.Iter)
	e.Int(m.K)
	e.F64(m.Alpha)
	e.F64(m.Beta)
	e.Int(m.M)
	e.U64(m.Seed)
	e.Int(m.V)
	e.Int(m.NumDocs)
	e.Int(m.NumTokens)
	e.Int(m.BlockTokens)
	e.I32s(m.Rows)
	e.I32s(m.Cols)
	b.Write(m.Shard)
	return b.Bytes()
}

// DecodeAssign parses an Assign payload.
func DecodeAssign(p []byte) (*Assign, error) {
	r := bytes.NewReader(p)
	d := sampler.NewDec(r)
	m := &Assign{
		Epoch: d.Int(), Slot: d.Int(), P: d.Int(), Iter: d.Int(),
		K: d.Int(), Alpha: d.F64(), Beta: d.F64(), M: d.Int(), Seed: d.U64(),
		V: d.Int(), NumDocs: d.Int(), NumTokens: d.Int(), BlockTokens: d.Int(),
	}
	if d.Err() == nil {
		if m.K < 1 || m.M < 1 || m.P < 1 || m.Slot < 0 || m.Slot >= m.P ||
			m.V < 1 || m.NumDocs < 1 || m.NumTokens < 0 || m.BlockTokens < 1 {
			return nil, fmt.Errorf("dist: assign with implausible dimensions")
		}
	}
	m.Rows = d.I32sLen("row owners", m.NumDocs)
	m.Cols = d.I32sLen("column owners", m.V)
	if err := d.Err(); err != nil {
		return nil, err
	}
	for _, o := range m.Rows {
		if o < 0 || int(o) >= m.P {
			return nil, fmt.Errorf("dist: assign row owner %d outside %d workers", o, m.P)
		}
	}
	for _, o := range m.Cols {
		if o < 0 || int(o) >= m.P {
			return nil, fmt.Errorf("dist: assign column owner %d outside %d workers", o, m.P)
		}
	}
	m.Shard = p[len(p)-r.Len():]
	return m, nil
}

// PassStart launches one training pass: the iteration number and the
// pass's replicated global topic-count vector.
type PassStart struct {
	Epoch, Iter int
	CK          []int32
}

// Encode serializes the message payload.
func (m *PassStart) Encode() []byte {
	var b bytes.Buffer
	e := sampler.NewEnc(&b)
	e.Int(m.Epoch)
	e.Int(m.Iter)
	e.I32s(m.CK)
	return b.Bytes()
}

// DecodePassStart parses a PassStart payload; k is the expected topic
// count.
func DecodePassStart(p []byte, k int) (*PassStart, error) {
	d := sampler.NewDec(bytes.NewReader(p))
	m := &PassStart{Epoch: d.Int(), Iter: d.Int()}
	m.CK = d.I32sLen("global counts", k)
	if err := d.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// Block ships a batch of finished tokens to their next owner. From and
// To are worker slots; the coordinator relays the frame to To without
// re-encoding it. Tokens travel as three flat arrays with the same
// stride-(M+1) payload layout as the dshd stream.
type Block struct {
	Epoch, Iter, Phase, From, To int
	DS, WS, Payload              []int32
}

// Encode serializes the message payload.
func (m *Block) Encode() []byte {
	var b bytes.Buffer
	e := sampler.NewEnc(&b)
	e.Int(m.Epoch)
	e.Int(m.Iter)
	e.Int(m.Phase)
	e.Int(m.From)
	e.Int(m.To)
	e.I32s(m.DS)
	e.I32s(m.WS)
	e.I32s(m.Payload)
	return b.Bytes()
}

// DecodeBlock parses a Block payload and validates it structurally: the
// arrays must agree with the stride, every topic must lie in [0, k),
// every cell inside (numDocs, v). A corrupt or hostile peer must not be
// able to panic the phase bodies.
func DecodeBlock(p []byte, k, m, numDocs, v int) (*Block, error) {
	d := sampler.NewDec(bytes.NewReader(p))
	b := &Block{Epoch: d.Int(), Iter: d.Int(), Phase: d.Int(), From: d.Int(), To: d.Int()}
	b.DS = d.I32s("block docs")
	b.WS = d.I32sLen("block words", len(b.DS))
	b.Payload = d.I32sLen("block payloads", len(b.DS)*(m+1))
	d.CheckTopics("block payloads", b.Payload, k)
	if err := d.Err(); err != nil {
		return nil, err
	}
	for j := range b.DS {
		if b.DS[j] < 0 || int(b.DS[j]) >= numDocs || b.WS[j] < 0 || int(b.WS[j]) >= v {
			return nil, fmt.Errorf("dist: block token at cell (%d,%d) outside corpus", b.DS[j], b.WS[j])
		}
	}
	return b, nil
}

// BlockHeader is the fixed prefix of a Block payload — everything the
// coordinator needs to relay the frame. Decoding only this keeps the
// relay path O(1) in the block size.
type BlockHeader struct {
	Epoch, Iter, Phase, From, To int
}

// DecodeBlockHeader parses just the routing prefix of a Block payload.
func DecodeBlockHeader(p []byte) (*BlockHeader, error) {
	d := sampler.NewDec(bytes.NewReader(p))
	h := &BlockHeader{Epoch: d.Int(), Iter: d.Int(), Phase: d.Int(), From: d.Int(), To: d.Int()}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return h, nil
}

// Sync is the shared shape of the small control messages: PhaseDone,
// Barrier, PassEnd's header, ShardReq, ShardState's header, Abort.
type Sync struct {
	Epoch, Iter, Phase, From int
}

// Encode serializes the message payload.
func (m *Sync) Encode() []byte {
	var b bytes.Buffer
	e := sampler.NewEnc(&b)
	e.Int(m.Epoch)
	e.Int(m.Iter)
	e.Int(m.Phase)
	e.Int(m.From)
	return b.Bytes()
}

// DecodeSync parses a Sync-shaped payload.
func DecodeSync(p []byte) (*Sync, error) {
	d := sampler.NewDec(bytes.NewReader(p))
	m := &Sync{Epoch: d.Int(), Iter: d.Int(), Phase: d.Int(), From: d.Int()}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// PassEnd reports a worker's completed pass along with its delta
// contribution to the next global topic-count vector; the coordinator
// sums these across workers (the once-per-pass allreduce).
type PassEnd struct {
	Epoch, Iter, From int
	CkAcc             []int32
}

// Encode serializes the message payload.
func (m *PassEnd) Encode() []byte {
	var b bytes.Buffer
	e := sampler.NewEnc(&b)
	e.Int(m.Epoch)
	e.Int(m.Iter)
	e.Int(m.From)
	e.I32s(m.CkAcc)
	return b.Bytes()
}

// DecodePassEnd parses a PassEnd payload; k is the expected topic count.
func DecodePassEnd(p []byte, k int) (*PassEnd, error) {
	d := sampler.NewDec(bytes.NewReader(p))
	m := &PassEnd{Epoch: d.Int(), Iter: d.Int(), From: d.Int()}
	m.CkAcc = d.I32sLen("ck delta", k)
	if err := d.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// ShardState uploads a worker's current shard as a raw dshd stream at a
// sync point. The coordinator feeds the streams of all workers straight
// into RestoreShards — the same validate-then-commit gate checkpoint
// restore uses — before writing the checkpoint.
type ShardState struct {
	Epoch, Iter, From int
	Shard             []byte // raw dshd stream, trailing
}

// Encode serializes the message payload.
func (m *ShardState) Encode() []byte {
	var b bytes.Buffer
	e := sampler.NewEnc(&b)
	e.Int(m.Epoch)
	e.Int(m.Iter)
	e.Int(m.From)
	b.Write(m.Shard)
	return b.Bytes()
}

// DecodeShardState parses a ShardState payload.
func DecodeShardState(p []byte) (*ShardState, error) {
	r := bytes.NewReader(p)
	d := sampler.NewDec(r)
	m := &ShardState{Epoch: d.Int(), Iter: d.Int(), From: d.Int()}
	if err := d.Err(); err != nil {
		return nil, err
	}
	m.Shard = p[len(p)-r.Len():]
	return m, nil
}
