// Package dist is the live multi-process execution mode of the
// Section 5.3 design: a coordinator process owns the corpus, the
// partitions, and the sharded checkpoint directory; worker processes
// own disjoint token shards and run the SAME phase bodies as the
// in-process sampler (internal/cluster's PhaseEnv), exchanging
// off-diagonal token blocks over TCP instead of channels. The only
// replicated state is the K-dim global count vector, aggregated from
// per-worker deltas once per pass — exactly the paper's claim.
//
// Fault tolerance is elastic resume, not protocol recovery: every
// membership change — a worker dying mid-pass, a worker joining, the
// coordinator itself restarting — is handled by reforming the cluster
// from the last manifest-committed sharded checkpoint, the same tested
// path internal/train uses for -resume. The transport below is
// therefore allowed to fail fast and simply: any connection error
// aborts the epoch and the coordinator reforms.
//
// Wire format: every message is one frame —
//
//	"WRPF" | type (1 byte) | payload length (uint32 LE) | payload | CRC32
//
// with the IEEE CRC32 trailer covering type, length, and payload. The
// byte-level specification lives in docs/FORMATS.md next to the
// WARPSHRD shard format, which travels verbatim inside Assign and
// ShardState payloads.
package dist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// frameMagic starts every frame; a connection that yields anything else
// is not speaking this protocol and is dropped immediately.
const frameMagic = "WRPF"

// MaxFramePayload bounds a frame's decoded payload length before any
// allocation happens: a corrupt or hostile length prefix must not
// trigger a multi-gigabyte allocation ahead of the CRC check.
const MaxFramePayload = 1 << 30

// frameAllocChunk bounds how far ReadFrame's payload buffer grows ahead
// of the bytes actually read.
const frameAllocChunk = 64 << 10

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// MsgType identifies a frame's payload schema (see proto.go).
type MsgType uint8

// The protocol's message types. Hello/Welcome form the handshake,
// Assign distributes shard state, PassStart/Block/PhaseDone/Barrier/
// PassEnd drive one training pass, ShardReq/ShardState collect state at
// sync points, Ping/Pong carry liveness, and Abort/Shutdown end an
// epoch or the run.
const (
	MsgHello MsgType = iota + 1
	MsgWelcome
	MsgAssign
	MsgPassStart
	MsgBlock
	MsgPhaseDone
	MsgBarrier
	MsgPassEnd
	MsgShardReq
	MsgShardState
	MsgPing
	MsgPong
	MsgAbort
	MsgShutdown
)

// String names the message type for logs and errors.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgWelcome:
		return "welcome"
	case MsgAssign:
		return "assign"
	case MsgPassStart:
		return "pass-start"
	case MsgBlock:
		return "block"
	case MsgPhaseDone:
		return "phase-done"
	case MsgBarrier:
		return "barrier"
	case MsgPassEnd:
		return "pass-end"
	case MsgShardReq:
		return "shard-req"
	case MsgShardState:
		return "shard-state"
	case MsgPing:
		return "ping"
	case MsgPong:
		return "pong"
	case MsgAbort:
		return "abort"
	case MsgShutdown:
		return "shutdown"
	}
	return fmt.Sprintf("msg-%d", uint8(t))
}

// WriteFrame writes one frame to w. The caller owns buffering and
// deadlines on the underlying connection.
func WriteFrame(w io.Writer, typ MsgType, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("dist: %s frame payload %d bytes exceeds limit %d", typ, len(payload), MaxFramePayload)
	}
	var hdr [9]byte
	copy(hdr[:4], frameMagic)
	hdr[4] = byte(typ)
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[4:9])
	crc.Write(payload)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc.Sum32())
	_, err := w.Write(trailer[:])
	return err
}

// ReadFrame reads one frame from r, verifying magic and CRC before the
// payload is returned. A frame failing either check poisons the stream
// (framing is lost), so callers must drop the connection on error.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if string(hdr[:4]) != frameMagic {
		return 0, nil, fmt.Errorf("dist: bad frame magic %q", hdr[:4])
	}
	typ := MsgType(hdr[4])
	n := binary.LittleEndian.Uint32(hdr[5:9])
	if n > MaxFramePayload {
		return 0, nil, fmt.Errorf("dist: %s frame declares %d-byte payload, limit %d", typ, n, MaxFramePayload)
	}
	// Grow the payload buffer as bytes actually arrive instead of
	// trusting the length prefix: a hostile or corrupt header claiming
	// a gigabyte then hanging up costs one chunk, not the claim.
	payload := make([]byte, 0, minInt(int(n), frameAllocChunk))
	for len(payload) < int(n) {
		g := minInt(int(n)-len(payload), frameAllocChunk)
		off := len(payload)
		payload = append(payload, make([]byte, g)...)
		if _, err := io.ReadFull(r, payload[off:]); err != nil {
			return 0, nil, fmt.Errorf("dist: reading %s payload: %w", typ, err)
		}
	}
	var trailer [4]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return 0, nil, fmt.Errorf("dist: reading %s trailer: %w", typ, err)
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[4:9])
	crc.Write(payload)
	if got, want := crc.Sum32(), binary.LittleEndian.Uint32(trailer[:]); got != want {
		return 0, nil, fmt.Errorf("dist: %s frame checksum mismatch (wire %08x, computed %08x)", typ, want, got)
	}
	return typ, payload, nil
}
