package dist

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		{0x00},
		[]byte("hello"),
		bytes.Repeat([]byte{0xAB}, 1<<16),
	}
	var b bytes.Buffer
	for _, p := range payloads {
		for _, typ := range []MsgType{MsgHello, MsgBlock, MsgShutdown} {
			if err := WriteFrame(&b, typ, p); err != nil {
				t.Fatalf("write %s: %v", typ, err)
			}
		}
	}
	for _, p := range payloads {
		for _, typ := range []MsgType{MsgHello, MsgBlock, MsgShutdown} {
			got, gp, err := ReadFrame(&b)
			if err != nil {
				t.Fatalf("read %s: %v", typ, err)
			}
			if got != typ {
				t.Fatalf("type = %s, want %s", got, typ)
			}
			if !bytes.Equal(gp, p) {
				t.Fatalf("%s payload mismatch: %d bytes, want %d", typ, len(gp), len(p))
			}
		}
	}
	if _, _, err := ReadFrame(&b); err != io.EOF {
		t.Fatalf("trailing read = %v, want EOF", err)
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	frame := func() []byte {
		var b bytes.Buffer
		if err := WriteFrame(&b, MsgPassStart, []byte("payload-bytes")); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}

	t.Run("bad_magic", func(t *testing.T) {
		f := frame()
		f[0] ^= 0xFF
		if _, _, err := ReadFrame(bytes.NewReader(f)); err == nil || !strings.Contains(err.Error(), "magic") {
			t.Fatalf("err = %v, want bad magic", err)
		}
	})
	t.Run("flipped_payload_byte", func(t *testing.T) {
		f := frame()
		f[11] ^= 0x01
		if _, _, err := ReadFrame(bytes.NewReader(f)); err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("err = %v, want checksum mismatch", err)
		}
	})
	t.Run("flipped_type_byte", func(t *testing.T) {
		f := frame()
		f[4] ^= 0x01 // type is covered by the CRC too
		if _, _, err := ReadFrame(bytes.NewReader(f)); err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("err = %v, want checksum mismatch", err)
		}
	})
	t.Run("flipped_trailer_byte", func(t *testing.T) {
		f := frame()
		f[len(f)-1] ^= 0x01
		if _, _, err := ReadFrame(bytes.NewReader(f)); err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("err = %v, want checksum mismatch", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		f := frame()
		if _, _, err := ReadFrame(bytes.NewReader(f[:len(f)-2])); err == nil {
			t.Fatal("truncated frame accepted")
		}
	})
	t.Run("oversize_length", func(t *testing.T) {
		f := frame()
		// Length field claims more than MaxFramePayload; the reader must
		// refuse before allocating.
		f[5], f[6], f[7], f[8] = 0xFF, 0xFF, 0xFF, 0xFF
		if _, _, err := ReadFrame(bytes.NewReader(f)); err == nil || !strings.Contains(err.Error(), "limit") {
			t.Fatalf("err = %v, want payload limit", err)
		}
	})
	t.Run("writer_refuses_oversize", func(t *testing.T) {
		var b bytes.Buffer
		if err := WriteFrame(&b, MsgBlock, make([]byte, MaxFramePayload+1)); err == nil {
			t.Fatal("oversize payload accepted")
		}
		if b.Len() != 0 {
			t.Fatal("oversize write left partial bytes on the stream")
		}
	})
}

func TestHelloRoundTrip(t *testing.T) {
	m := &Hello{Version: ProtoVersion, ID: "worker-7"}
	got, err := DecodeHello(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != m.Version || got.ID != m.ID {
		t.Fatalf("got %+v, want %+v", got, m)
	}
	if _, err := DecodeHello((&Hello{Version: 1}).Encode()); err == nil {
		t.Fatal("empty worker ID accepted")
	}
}

func TestAssignRoundTrip(t *testing.T) {
	m := &Assign{
		Epoch: 3, Slot: 1, P: 2, Iter: 40,
		K: 8, Alpha: 0.6, Beta: 0.01, M: 2, Seed: 99,
		V: 5, NumDocs: 4, NumTokens: 17, BlockTokens: 3,
		Rows: []int32{0, 1, 0, 1}, Cols: []int32{1, 0, 1, 0, 1},
		Shard: []byte("raw-dshd-stream-stand-in"),
	}
	got, err := DecodeAssign(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != m.Epoch || got.Slot != m.Slot || got.P != m.P || got.Iter != m.Iter ||
		got.K != m.K || got.Alpha != m.Alpha || got.Beta != m.Beta || got.M != m.M ||
		got.Seed != m.Seed || got.V != m.V || got.NumDocs != m.NumDocs ||
		got.NumTokens != m.NumTokens || got.BlockTokens != m.BlockTokens {
		t.Fatalf("scalar mismatch: got %+v", got)
	}
	if !bytes.Equal(got.Shard, m.Shard) {
		t.Fatalf("shard bytes: got %q", got.Shard)
	}

	bad := *m
	bad.Cols = []int32{1, 0, 5, 0, 1} // owner outside [0, P)
	if _, err := DecodeAssign(bad.Encode()); err == nil {
		t.Fatal("out-of-range column owner accepted")
	}
	bad = *m
	bad.Slot = 2 // slot == P
	if _, err := DecodeAssign(bad.Encode()); err == nil {
		t.Fatal("slot >= P accepted")
	}
}

func TestBlockRoundTripAndValidation(t *testing.T) {
	const k, m, numDocs, v = 6, 2, 10, 12
	b := &Block{
		Epoch: 2, Iter: 9, Phase: PhaseDoc, From: 0, To: 1,
		DS:      []int32{1, 4, 9},
		WS:      []int32{0, 11, 3},
		Payload: []int32{5, 0, 1, 2, 3, 4, 0, 5, 5},
	}
	got, err := DecodeBlock(b.Encode(), k, m, numDocs, v)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 2 || got.Iter != 9 || got.Phase != PhaseDoc || got.From != 0 || got.To != 1 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !equalI32(got.DS, b.DS) || !equalI32(got.WS, b.WS) || !equalI32(got.Payload, b.Payload) {
		t.Fatal("array mismatch")
	}

	h, err := DecodeBlockHeader(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if h.Epoch != 2 || h.Iter != 9 || h.Phase != PhaseDoc || h.From != 0 || h.To != 1 {
		t.Fatalf("block header mismatch: %+v", h)
	}

	bad := *b
	bad.Payload = []int32{5, 0, 1, 2, 3, 4, 0, 5, int32(k)} // topic out of range
	if _, err := DecodeBlock(bad.Encode(), k, m, numDocs, v); err == nil {
		t.Fatal("out-of-range topic accepted")
	}
	bad = *b
	bad.DS = []int32{1, 4, int32(numDocs)} // doc out of range
	if _, err := DecodeBlock(bad.Encode(), k, m, numDocs, v); err == nil {
		t.Fatal("out-of-range doc accepted")
	}
	bad = *b
	bad.WS = []int32{0, 11} // length disagreement
	if _, err := DecodeBlock(bad.Encode(), k, m, numDocs, v); err == nil {
		t.Fatal("ragged arrays accepted")
	}
}

func TestSmallMessageRoundTrips(t *testing.T) {
	ps := &PassStart{Epoch: 1, Iter: 7, CK: []int32{3, 0, 5}}
	gps, err := DecodePassStart(ps.Encode(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if gps.Epoch != 1 || gps.Iter != 7 || !equalI32(gps.CK, ps.CK) {
		t.Fatalf("pass-start mismatch: %+v", gps)
	}
	if _, err := DecodePassStart(ps.Encode(), 4); err == nil {
		t.Fatal("wrong-K global counts accepted")
	}

	sy := &Sync{Epoch: 2, Iter: 8, Phase: PhaseWord, From: 3}
	gsy, err := DecodeSync(sy.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if *gsy != *sy {
		t.Fatalf("sync mismatch: %+v", gsy)
	}

	pe := &PassEnd{Epoch: 4, Iter: 11, From: 1, CkAcc: []int32{1, -2, 1}}
	gpe, err := DecodePassEnd(pe.Encode(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if gpe.Epoch != 4 || gpe.Iter != 11 || gpe.From != 1 || !equalI32(gpe.CkAcc, pe.CkAcc) {
		t.Fatalf("pass-end mismatch: %+v", gpe)
	}

	ss := &ShardState{Epoch: 5, Iter: 12, From: 0, Shard: []byte{1, 2, 3}}
	gss, err := DecodeShardState(ss.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if gss.Epoch != 5 || gss.Iter != 12 || gss.From != 0 || !bytes.Equal(gss.Shard, ss.Shard) {
		t.Fatalf("shard-state mismatch: %+v", gss)
	}
}

func equalI32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
