// The coordinator process. It owns everything the workers must not:
// the corpus, the partitions, the evaluation loop, and the sharded
// checkpoint directory. Training state lives in a "shadow" in-process
// Distributed sampler that is only touched at sync points: worker
// uploads flow into RestoreShards (the same validate-then-commit gate
// checkpoint restore uses), the log likelihood is evaluated, and the
// checkpoint is written with the same WriteSharded path the
// single-process trainer uses.
//
// Membership is epoch-based. Every epoch starts from the last committed
// checkpoint: the coordinator restores it into a fresh shadow sized to
// the CURRENT worker count (elastic resume — rng.Derive reseeding and
// all — exercised by internal/cluster's tests) and distributes the
// resulting shards. A worker dying mid-pass aborts the epoch; survivors
// discard state and the next epoch reforms from the checkpoint. A
// worker joining requests the same thing at the next sync point. A
// coordinator restart IS an epoch start: workers re-register and the
// first epoch reforms from disk. Fault path and restart path are the
// same tested code.
package dist

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"warplda/internal/cluster"
	"warplda/internal/corpus"
	"warplda/internal/eval"
	"warplda/internal/sampler"
	"warplda/internal/train"
)

// CoordinatorConfig configures NewCoordinator.
type CoordinatorConfig struct {
	// Addr is the listen address (host:port; port 0 picks one).
	Addr string
	// Corpus is the training corpus; workers never see it.
	Corpus *corpus.Corpus
	// Cfg is the sampler configuration (M >= 1; Threads is ignored —
	// the worker count is the live membership).
	Cfg sampler.Config
	// Iters is the total number of training iterations.
	Iters int
	// MinWorkers is the membership an epoch needs to form (default 1).
	MinWorkers int
	// CheckpointDir receives the sharded checkpoints every sync point
	// commits; it is also where every epoch resumes from. Required.
	CheckpointDir string
	// CheckpointEvery is the sync-point cadence in iterations
	// (default 5). Each sync collects worker shards, evaluates the log
	// likelihood, and commits a checkpoint.
	CheckpointEvery int
	// CheckpointKeep is the keep-last-N retention (default 3).
	CheckpointKeep int
	// HeartbeatInterval is the ping cadence (default 1s);
	// HeartbeatTimeout the silence after which a worker is declared dead
	// (default 30s).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// ReadTimeout is the per-frame read deadline on worker connections
	// (default 60s); WriteTimeout bounds both a frame write and how long
	// a full send queue may stall the driver (default 30s).
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
	// OnSync, when non-nil, is called after every committed checkpoint
	// with the synced iteration and the coordinator's shadow sampler
	// (valid for the duration of the call only — the driver goroutine
	// blocks until it returns, so keep it short; snapshot what you need
	// and return). It is the hook serving-side publishers use to emit a
	// model or WARPDLT delta per sync point.
	OnSync func(iter int, s sampler.Sampler)
}

func (cc CoordinatorConfig) withDefaults() (CoordinatorConfig, error) {
	if cc.Corpus == nil {
		return cc, errors.New("dist: coordinator needs a corpus")
	}
	if err := cc.Cfg.Validate(); err != nil {
		return cc, err
	}
	if cc.Cfg.M < 1 {
		return cc, fmt.Errorf("dist: M = %d, want >= 1", cc.Cfg.M)
	}
	if cc.Iters < 1 {
		return cc, fmt.Errorf("dist: %d iterations", cc.Iters)
	}
	if cc.CheckpointDir == "" {
		return cc, errors.New("dist: coordinator needs a checkpoint directory (it is the recovery log)")
	}
	if cc.MinWorkers < 1 {
		cc.MinWorkers = 1
	}
	if cc.CheckpointEvery < 1 {
		cc.CheckpointEvery = 5
	}
	if cc.CheckpointKeep < 1 {
		cc.CheckpointKeep = 3
	}
	if cc.HeartbeatInterval <= 0 {
		cc.HeartbeatInterval = time.Second
	}
	if cc.HeartbeatTimeout <= 0 {
		cc.HeartbeatTimeout = 30 * time.Second
	}
	if cc.ReadTimeout <= 0 {
		cc.ReadTimeout = 60 * time.Second
	}
	if cc.WriteTimeout <= 0 {
		cc.WriteTimeout = 30 * time.Second
	}
	if cc.Logf == nil {
		cc.Logf = func(string, ...any) {}
	}
	return cc, nil
}

// errMembership aborts an epoch whose membership changed; the serve
// loop reforms from the last committed checkpoint.
var errMembership = errors.New("dist: membership changed")

// connHandle identifies one accepted connection across goroutines; the
// pointer itself disambiguates a reconnected worker from its dead
// predecessor with the same ID.
type connHandle struct {
	id   string
	conn net.Conn
}

type evHello struct{ h *connHandle }
type evDead struct {
	h   *connHandle
	err error
}
type evMsg struct {
	h       *connHandle
	typ     MsgType
	payload []byte
}

type outFrame struct {
	typ     MsgType
	payload []byte
}

// wconn is the driver's view of one registered worker.
type wconn struct {
	h        *connHandle
	out      chan outFrame
	closed   bool
	member   int // slot in the current epoch, -1 when not a member
	lastSeen time.Time
}

// Coordinator runs the distributed training driver. Build with
// NewCoordinator, run with Serve.
type Coordinator struct {
	cfg     CoordinatorConfig
	ln      net.Listener
	events  chan any
	quit    chan struct{}
	writers sync.WaitGroup

	// Driver-owned state (single goroutine).
	conns      map[string]*wconn
	epoch      int
	memberLost bool
	joined     bool
	trace      sampler.Run
	elapsed    time.Duration
	fp         uint32
}

// NewCoordinator validates the configuration, creates the checkpoint
// directory, and starts listening. Serve runs the cluster.
func NewCoordinator(cc CoordinatorConfig) (*Coordinator, error) {
	cc, err := cc.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cc.CheckpointDir, 0o755); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cc.Addr)
	if err != nil {
		return nil, err
	}
	return &Coordinator{
		cfg:    cc,
		ln:     ln,
		events: make(chan any, 4096),
		quit:   make(chan struct{}),
		conns:  make(map[string]*wconn),
		fp:     train.CorpusFingerprint(cc.Corpus),
	}, nil
}

// Addr returns the coordinator's bound listen address (useful with
// port 0).
func (co *Coordinator) Addr() string { return co.ln.Addr().String() }

// Serve accepts workers and drives training to completion, reforming
// the cluster from the last committed checkpoint on every membership
// change. It returns the run's evaluation trace.
func (co *Coordinator) Serve(ctx context.Context) (sampler.Run, error) {
	defer co.ln.Close()
	defer close(co.quit)
	defer co.closeAll()
	go co.acceptLoop()
	hb := time.NewTicker(co.cfg.HeartbeatInterval)
	defer hb.Stop()
	for {
		if err := co.waitForWorkers(ctx, hb); err != nil {
			return co.trace, err
		}
		done, err := co.runEpoch(ctx, hb)
		switch {
		case err == nil && done:
			co.logf("training complete at iteration %d; shutting down workers", co.cfg.Iters)
			for _, w := range co.conns {
				co.send(w, MsgShutdown, nil)
			}
			return co.trace, nil
		case err == nil:
			co.logf("reforming to admit joined workers")
		case errors.Is(err, errMembership):
			co.logf("epoch %d aborted (membership changed); reforming from last checkpoint", co.epoch)
		default:
			return co.trace, err
		}
	}
}

func (co *Coordinator) logf(format string, args ...any) { co.cfg.Logf("dist: "+format, args...) }

// acceptLoop hands each connection to a handshake-then-read goroutine.
func (co *Coordinator) acceptLoop() {
	for {
		c, err := co.ln.Accept()
		if err != nil {
			return
		}
		go co.readLoop(c)
	}
}

// readLoop performs the handshake and then pumps frames into the event
// channel until the connection dies.
func (co *Coordinator) readLoop(c net.Conn) {
	br := bufio.NewReaderSize(c, 1<<16)
	c.SetReadDeadline(time.Now().Add(co.cfg.ReadTimeout))
	typ, payload, err := ReadFrame(br)
	if err != nil || typ != MsgHello {
		c.Close()
		return
	}
	hello, err := DecodeHello(payload)
	if err != nil || hello.Version != ProtoVersion {
		c.Close()
		return
	}
	h := &connHandle{id: hello.ID, conn: c}
	if !co.post(evHello{h}) {
		c.Close()
		return
	}
	for {
		c.SetReadDeadline(time.Now().Add(co.cfg.ReadTimeout))
		typ, payload, err := ReadFrame(br)
		if err != nil {
			co.post(evDead{h, err})
			return
		}
		if !co.post(evMsg{h, typ, payload}) {
			return
		}
	}
}

// post delivers an event unless the coordinator is shutting down.
func (co *Coordinator) post(ev any) bool {
	select {
	case co.events <- ev:
		return true
	case <-co.quit:
		return false
	}
}

// writeLoop drains a worker's send queue onto its connection, flushing
// whenever the queue empties (write coalescing). On error it closes the
// connection — the read loop then reports the death — and discards the
// rest of the queue.
func (co *Coordinator) writeLoop(c net.Conn, out chan outFrame) {
	bw := bufio.NewWriterSize(c, 1<<16)
	failed := false
	for f := range out {
		if failed {
			continue
		}
		c.SetWriteDeadline(time.Now().Add(co.cfg.WriteTimeout))
		if err := WriteFrame(bw, f.typ, f.payload); err != nil {
			failed = true
			c.Close()
			continue
		}
		if len(out) == 0 {
			if err := bw.Flush(); err != nil {
				failed = true
				c.Close()
			}
		}
	}
	if !failed {
		bw.Flush()
	}
	c.Close()
}

// send enqueues a frame to a worker, blocking at most WriteTimeout on a
// full queue before declaring the worker dead.
func (co *Coordinator) send(w *wconn, typ MsgType, payload []byte) {
	if w.closed {
		return
	}
	select {
	case w.out <- outFrame{typ, payload}:
		return
	default:
	}
	select {
	case w.out <- outFrame{typ, payload}:
	case <-time.After(co.cfg.WriteTimeout):
		co.logf("worker %s: send queue stalled for %v; dropping connection", w.h.id, co.cfg.WriteTimeout)
		w.h.conn.Close() // read loop reports the death
	}
}

// step services exactly one event — registration, death, heartbeat tick
// — and returns the message events the caller's wait loop cares about.
// It returns (nil, nil) for plumbing events.
func (co *Coordinator) step(ctx context.Context, hb *time.Ticker) (*evMsg, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-hb.C:
		now := time.Now()
		for id, w := range co.conns {
			if now.Sub(w.lastSeen) > co.cfg.HeartbeatTimeout {
				co.logf("worker %s: no traffic for %v; declaring dead", id, co.cfg.HeartbeatTimeout)
				w.h.conn.Close()
				continue
			}
			co.send(w, MsgPing, nil)
		}
		return nil, nil
	case ev := <-co.events:
		switch e := ev.(type) {
		case evHello:
			co.onHello(e)
		case evDead:
			co.onDead(e)
		case evMsg:
			w := co.conns[e.h.id]
			if w == nil || w.h != e.h {
				return nil, nil // frame from a superseded connection
			}
			w.lastSeen = time.Now()
			if e.typ == MsgPong {
				return nil, nil
			}
			return &e, nil
		}
		return nil, nil
	}
}

func (co *Coordinator) onHello(e evHello) {
	if old, ok := co.conns[e.h.id]; ok {
		// Same ID reconnecting: the previous incarnation is dead even if
		// its socket has not noticed yet. Idempotent re-registration.
		co.logf("worker %s: re-registered, dropping previous connection", e.h.id)
		old.h.conn.Close()
		co.dropConn(old)
	} else {
		co.logf("worker %s: registered", e.h.id)
	}
	w := &wconn{h: e.h, out: make(chan outFrame, 4096), member: -1, lastSeen: time.Now()}
	co.conns[e.h.id] = w
	co.writers.Add(1)
	go func() {
		defer co.writers.Done()
		co.writeLoop(e.h.conn, w.out)
	}()
	co.send(w, MsgWelcome, nil)
	co.joined = true
}

func (co *Coordinator) onDead(e evDead) {
	w := co.conns[e.h.id]
	if w == nil || w.h != e.h {
		return // a superseded connection dying late
	}
	co.logf("worker %s: connection lost: %v", e.h.id, e.err)
	delete(co.conns, e.h.id)
	co.dropConn(w)
}

// dropConn releases a wconn the driver no longer tracks.
func (co *Coordinator) dropConn(w *wconn) {
	if !w.closed {
		w.closed = true
		close(w.out)
	}
	if w.member >= 0 {
		co.memberLost = true
	}
}

// closeAll releases every connection on Serve exit and waits for the
// writer goroutines to flush queued frames (the final Shutdown
// broadcast) before the process can move on — a worker must see the
// Shutdown frame, not a bare EOF, or it will keep re-registering.
func (co *Coordinator) closeAll() {
	for id, w := range co.conns {
		delete(co.conns, id)
		if !w.closed {
			w.closed = true
			close(w.out)
		}
	}
	co.writers.Wait()
}

// waitForWorkers pumps events until MinWorkers are registered, then
// clears the membership flags for the next epoch.
func (co *Coordinator) waitForWorkers(ctx context.Context, hb *time.Ticker) error {
	logged := -1
	for len(co.conns) < co.cfg.MinWorkers {
		if n := len(co.conns); n != logged {
			co.logf("forming: %d/%d workers", n, co.cfg.MinWorkers)
			logged = n
		}
		if _, err := co.step(ctx, hb); err != nil {
			return err
		}
	}
	co.memberLost, co.joined = false, false
	return nil
}

// runEpoch forms one epoch over the current membership and trains until
// the iteration budget, a membership change, or an error. It returns
// done=true when training reached Iters, (false, nil) to request a
// reform that admits joined workers, or errMembership after an abort.
func (co *Coordinator) runEpoch(ctx context.Context, hb *time.Ticker) (done bool, err error) {
	co.epoch++
	members := make([]string, 0, len(co.conns))
	for id, w := range co.conns {
		members = append(members, id)
		w.member = -1
	}
	sort.Strings(members)
	p := len(members)
	for i, id := range members {
		co.conns[id].member = i
	}
	shadow, startIter, err := co.loadOrInit(p)
	if err != nil {
		return false, err
	}
	if startIter >= co.cfg.Iters {
		return true, nil
	}
	co.logf("epoch %d: %d workers, resuming at iteration %d/%d", co.epoch, p, startIter, co.cfg.Iters)

	// Distribute: every worker gets its slot's shard plus the routing
	// tables, as of the restored state.
	rows, cols := shadow.Partitions()
	blockTokens := cluster.BlockTokens(co.cfg.Corpus.NumTokens(), p)
	for i, id := range members {
		var sb bytes.Buffer
		if err := shadow.ShardTo(i, &sb); err != nil {
			return false, err
		}
		a := &Assign{
			Epoch: co.epoch, Slot: i, P: p, Iter: startIter,
			K: co.cfg.Cfg.K, Alpha: co.cfg.Cfg.Alpha, Beta: co.cfg.Cfg.Beta,
			M: co.cfg.Cfg.M, Seed: co.cfg.Cfg.Seed,
			V: co.cfg.Corpus.V, NumDocs: co.cfg.Corpus.NumDocs(),
			NumTokens: co.cfg.Corpus.NumTokens(), BlockTokens: blockTokens,
			Rows: rows, Cols: cols, Shard: sb.Bytes(),
		}
		co.send(co.conns[id], MsgAssign, a.Encode())
	}

	ck := shadow.GlobalCounts()
	for iter := startIter; iter < co.cfg.Iters; {
		passStart := time.Now()
		ps := (&PassStart{Epoch: co.epoch, Iter: iter, CK: ck}).Encode()
		for _, id := range members {
			if w := co.conns[id]; w != nil {
				co.send(w, MsgPassStart, ps)
			}
		}
		for _, phase := range []int{PhaseWord, PhaseDoc} {
			if err := co.phaseBarrier(ctx, hb, members, iter, phase); err != nil {
				return false, err
			}
			bar := (&Sync{Epoch: co.epoch, Iter: iter, Phase: phase}).Encode()
			for _, id := range members {
				if w := co.conns[id]; w != nil {
					co.send(w, MsgBarrier, bar)
				}
			}
		}
		newCK, err := co.collectPassEnds(ctx, hb, members, iter)
		if err != nil {
			return false, err
		}
		ck = newCK
		iter++
		co.elapsed += time.Since(passStart)

		if co.joined || iter%co.cfg.CheckpointEvery == 0 || iter == co.cfg.Iters {
			if err := co.syncCheckpoint(ctx, hb, shadow, members, iter); err != nil {
				return false, err
			}
			ck = shadow.GlobalCounts()
			if co.joined && iter < co.cfg.Iters {
				return false, nil // reform to admit the joiners
			}
		}
	}
	return true, nil
}

// abortEpoch tells surviving members to discard epoch state.
func (co *Coordinator) abortEpoch() {
	ab := (&Sync{Epoch: co.epoch}).Encode()
	for _, w := range co.conns {
		if w.member >= 0 {
			co.send(w, MsgAbort, ab)
			w.member = -1
		}
	}
}

// checkMembership aborts the epoch if a member died.
func (co *Coordinator) checkMembership() error {
	if co.memberLost {
		co.abortEpoch()
		return errMembership
	}
	return nil
}

// phaseBarrier relays token blocks between workers until every member
// reports the phase done. Blocks are relayed from their raw payloads —
// the coordinator decodes only the routing header.
func (co *Coordinator) phaseBarrier(ctx context.Context, hb *time.Ticker, members []string, iter, phase int) error {
	done := make([]bool, len(members))
	n := 0
	for n < len(members) {
		if err := co.checkMembership(); err != nil {
			return err
		}
		ev, err := co.step(ctx, hb)
		if err != nil {
			return err
		}
		if ev == nil {
			continue
		}
		switch ev.typ {
		case MsgBlock:
			h, err := DecodeBlockHeader(ev.payload)
			if err != nil || h.Epoch != co.epoch || h.Phase != phase ||
				h.To < 0 || h.To >= len(members) {
				continue // stale or malformed; the phase barrier will catch real loss
			}
			if w := co.conns[members[h.To]]; w != nil {
				co.send(w, MsgBlock, ev.payload)
			}
		case MsgPhaseDone:
			sy, err := DecodeSync(ev.payload)
			if err != nil || sy.Epoch != co.epoch || sy.Phase != phase {
				continue
			}
			if sy.From >= 0 && sy.From < len(members) && !done[sy.From] {
				done[sy.From] = true
				n++
			}
		}
	}
	return co.checkMembership()
}

// collectPassEnds gathers every member's ck delta and aggregates the
// next pass's global count vector (the once-per-pass allreduce).
func (co *Coordinator) collectPassEnds(ctx context.Context, hb *time.Ticker, members []string, iter int) ([]int32, error) {
	ck := make([]int32, co.cfg.Cfg.K)
	got := make([]bool, len(members))
	n := 0
	for n < len(members) {
		if err := co.checkMembership(); err != nil {
			return nil, err
		}
		ev, err := co.step(ctx, hb)
		if err != nil {
			return nil, err
		}
		if ev == nil || ev.typ != MsgPassEnd {
			continue
		}
		pe, err := DecodePassEnd(ev.payload, co.cfg.Cfg.K)
		if err != nil || pe.Epoch != co.epoch || pe.Iter != iter {
			continue
		}
		if pe.From < 0 || pe.From >= len(members) || got[pe.From] {
			continue
		}
		got[pe.From] = true
		n++
		for k, v := range pe.CkAcc {
			ck[k] += v
		}
	}
	if err := co.checkMembership(); err != nil {
		return nil, err
	}
	return ck, nil
}

// syncCheckpoint collects every member's shard, commits it to the
// shadow sampler through the validate-then-commit restore gate,
// evaluates the log likelihood, and writes the sharded checkpoint.
func (co *Coordinator) syncCheckpoint(ctx context.Context, hb *time.Ticker, shadow *cluster.Distributed, members []string, iter int) error {
	req := (&Sync{Epoch: co.epoch, Iter: iter}).Encode()
	for _, id := range members {
		if w := co.conns[id]; w != nil {
			co.send(w, MsgShardReq, req)
		}
	}
	blobs := make([][]byte, len(members))
	n := 0
	for n < len(members) {
		if err := co.checkMembership(); err != nil {
			return err
		}
		ev, err := co.step(ctx, hb)
		if err != nil {
			return err
		}
		if ev == nil || ev.typ != MsgShardState {
			continue
		}
		st, err := DecodeShardState(ev.payload)
		if err != nil || st.Epoch != co.epoch || st.Iter != iter {
			continue
		}
		if st.From < 0 || st.From >= len(members) || blobs[st.From] != nil {
			continue
		}
		blobs[st.From] = st.Shard
		n++
	}
	if err := co.checkMembership(); err != nil {
		return err
	}
	readers := make([]io.Reader, len(blobs))
	for i, b := range blobs {
		readers[i] = bytes.NewReader(b)
	}
	if _, err := shadow.RestoreShards(uint64(iter), readers); err != nil {
		// A worker uploaded state that fails validation: don't trust this
		// epoch; reform from the last committed checkpoint instead.
		co.logf("sync at iteration %d rejected: %v; aborting epoch", iter, err)
		co.abortEpoch()
		return errMembership
	}
	ll := eval.LogJoint(co.cfg.Corpus, shadow.Assignments(), co.cfg.Cfg.K, co.cfg.Cfg.Alpha, co.cfg.Cfg.Beta)
	tps := 0.0
	if sec := co.elapsed.Seconds(); sec > 0 {
		tps = float64(co.cfg.Corpus.NumTokens()*iter) / sec
	}
	co.trace.Points = append(co.trace.Points, sampler.Point{
		Iter: iter, Elapsed: co.elapsed, LogLik: ll, TokensSec: tps,
	})
	if err := co.writeCheckpoint(shadow, iter); err != nil {
		return err
	}
	co.logf("iteration %d: log likelihood %.1f, checkpoint committed", iter, ll)
	if co.cfg.OnSync != nil {
		co.cfg.OnSync(iter, shadow)
	}
	return nil
}

// loadOrInit builds the epoch's shadow sampler over p workers: restored
// elastically from the newest committed checkpoint when one exists,
// freshly initialized (and immediately checkpointed, so a crash before
// the first sync has a resume point) otherwise.
func (co *Coordinator) loadOrInit(p int) (*cluster.Distributed, int, error) {
	shadow, err := cluster.NewDistributed(co.cfg.Corpus, co.cfg.Cfg, p)
	if err != nil {
		return nil, 0, err
	}
	entries, err := train.ListCheckpoints(co.cfg.CheckpointDir)
	if err != nil {
		return nil, 0, err
	}
	if len(entries) == 0 {
		co.trace = sampler.Run{Sampler: shadow.Name()}
		co.elapsed = 0
		if err := co.writeCheckpoint(shadow, 0); err != nil {
			return nil, 0, err
		}
		co.logf("fresh start: initial checkpoint committed at iteration 0")
		return shadow, 0, nil
	}
	ckpt, err := train.Load(co.cfg.CheckpointDir)
	if err != nil {
		return nil, 0, err
	}
	cfgP := co.cfg.Cfg
	cfgP.Threads = p
	if err := ckpt.VerifyElastic(shadow.Name(), co.fp, cfgP); err != nil {
		return nil, 0, err
	}
	reseeded, err := ckpt.RestoreInto(shadow)
	if err != nil {
		return nil, 0, err
	}
	co.trace = ckpt.Trace
	co.elapsed = ckpt.Elapsed
	if reseeded {
		co.logf("elastic resume from iteration %d: %d saved shards repartitioned across %d workers (worker RNG streams reseeded)",
			ckpt.Iter, len(ckpt.ShardFiles), p)
	} else {
		co.logf("resume from iteration %d with %d workers (exact)", ckpt.Iter, p)
	}
	return shadow, ckpt.Iter, nil
}

// writeCheckpoint commits the shadow's state as a sharded checkpoint —
// same envelope, format, and retention the single-process trainer uses,
// so `warplda-train -resume` can pick up a coordinator's run and vice
// versa.
func (co *Coordinator) writeCheckpoint(shadow *cluster.Distributed, iter int) error {
	cfgP := co.cfg.Cfg
	cfgP.Threads = shadow.NumShards()
	ckpt := &train.Checkpoint{
		Sampler:     shadow.Name(),
		Cfg:         cfgP,
		Iter:        iter,
		Elapsed:     co.elapsed,
		Trace:       co.trace,
		Fingerprint: co.fp,
	}
	if _, err := ckpt.WriteSharded(co.cfg.CheckpointDir, shadow); err != nil {
		return fmt.Errorf("dist: writing checkpoint at iteration %d: %w", iter, err)
	}
	if err := train.PruneCheckpoints(co.cfg.CheckpointDir, co.cfg.CheckpointKeep, iter); err != nil {
		co.logf("checkpoint retention sweep: %v", err)
	}
	return nil
}
