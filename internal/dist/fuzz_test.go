package dist

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame feeds ReadFrame hostile bytes: the decoder must never
// panic, never allocate proportionally to a forged length prefix, and
// every frame it accepts must re-encode to the exact bytes it consumed
// (the format has one canonical encoding).
func FuzzDecodeFrame(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteFrame(&valid, MsgHello, []byte("worker-1")); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	var empty bytes.Buffer
	if err := WriteFrame(&empty, MsgPing, nil); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	f.Add([]byte(frameMagic))
	f.Add([]byte{})
	f.Add(valid.Bytes()[:valid.Len()-2])
	flipped := append([]byte(nil), valid.Bytes()...)
	flipped[6] ^= 0x01 // length prefix
	f.Add(flipped)
	// A maximal length claim with no payload behind it.
	huge := []byte(frameMagic + "\x05\xff\xff\xff\x3f")
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var re bytes.Buffer
		if err := WriteFrame(&re, typ, payload); err != nil {
			t.Fatalf("accepted frame does not re-encode: %v", err)
		}
		if !bytes.Equal(re.Bytes(), data[:re.Len()]) {
			t.Fatalf("re-encoded frame differs from the consumed bytes:\n got %x\nwant %x", re.Bytes(), data[:re.Len()])
		}
	})
}

// TestReadFrameTruncationFootprint pins the chunked-allocation defense:
// a header declaring the 1 GiB maximum with no payload behind it must
// fail after one chunk, not after reserving the claim.
func TestReadFrameTruncationFootprint(t *testing.T) {
	hostile := []byte(frameMagic + "\x05\xff\xff\xff\x3f") // MaxFramePayload declared, zero bytes delivered
	if _, _, err := ReadFrame(bytes.NewReader(hostile)); err == nil {
		t.Fatal("truncated 1 GiB frame accepted")
	}
	// Allocation tracks delivered bytes: a short prefix of real payload
	// fails at EOF with only chunk-sized growth behind it.
	withSome := append(append([]byte(nil), hostile...), make([]byte, 1024)...)
	if _, _, err := ReadFrame(bytes.NewReader(withSome)); err == nil {
		t.Fatal("truncated frame accepted")
	}
}
