// The worker process runtime. A worker is a pure compute node: it never
// sees the corpus, only its token shard (delivered as a dshd stream in
// Assign), the routing tables, and the pass-by-pass global counts. It
// runs the shared phase bodies from internal/cluster over its tokens
// and ships finished off-diagonal blocks through the coordinator.
//
// Resilience model: the worker retries its connection with bounded
// exponential backoff and re-registers under the same ID (idempotent —
// the coordinator treats a returning ID as the same worker). It keeps
// no durable state: after any disconnect or abort it simply waits for
// a fresh Assign, because the coordinator reforms every epoch from the
// last committed checkpoint. Crash recovery and reconnect are the same
// code path.
package dist

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"warplda/internal/cluster"
	"warplda/internal/rng"
	"warplda/internal/sampler"
)

// WorkerConfig configures RunWorker.
type WorkerConfig struct {
	// Coordinator is the coordinator's host:port.
	Coordinator string
	// ID is the worker's stable identity across reconnects. Required.
	ID string
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// RetryBackoff is the initial delay between failed connection
	// attempts, doubling up to MaxBackoff (defaults 200ms / 3s).
	RetryBackoff time.Duration
	// MaxBackoff caps the backoff growth.
	MaxBackoff time.Duration
	// MaxRetries bounds CONSECUTIVE failed connection attempts before
	// the worker gives up (default 60; one success resets the count).
	MaxRetries int
	// ReadTimeout is the per-frame read deadline. The coordinator's
	// heartbeats guarantee traffic well inside it; expiry means the
	// coordinator is gone and triggers a reconnect (default 60s).
	ReadTimeout time.Duration
	// WriteTimeout is the per-frame write deadline (default 30s).
	WriteTimeout time.Duration
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

func (wc WorkerConfig) withDefaults() (WorkerConfig, error) {
	if wc.Coordinator == "" {
		return wc, errors.New("dist: worker needs a coordinator address")
	}
	if wc.ID == "" {
		return wc, errors.New("dist: worker needs an ID")
	}
	if wc.DialTimeout <= 0 {
		wc.DialTimeout = 5 * time.Second
	}
	if wc.RetryBackoff <= 0 {
		wc.RetryBackoff = 200 * time.Millisecond
	}
	if wc.MaxBackoff <= 0 {
		wc.MaxBackoff = 3 * time.Second
	}
	if wc.MaxRetries <= 0 {
		wc.MaxRetries = 60
	}
	if wc.ReadTimeout <= 0 {
		wc.ReadTimeout = 60 * time.Second
	}
	if wc.WriteTimeout <= 0 {
		wc.WriteTimeout = 30 * time.Second
	}
	if wc.Logf == nil {
		wc.Logf = func(string, ...any) {}
	}
	return wc, nil
}

// errShutdown unwinds a session when the coordinator broadcast a clean
// end of run; errAborted unwinds a pass when the epoch was aborted.
var (
	errShutdown = errors.New("dist: shutdown requested")
	errAborted  = errors.New("dist: epoch aborted")
)

// RunWorker runs one worker until the coordinator broadcasts Shutdown
// (returns nil), ctx is cancelled, or MaxRetries consecutive connection
// attempts fail. Every disconnect — network error, coordinator restart,
// protocol violation — is retried with backoff and a fresh idempotent
// registration.
func RunWorker(ctx context.Context, wc WorkerConfig) error {
	wc, err := wc.withDefaults()
	if err != nil {
		return err
	}
	backoff := wc.RetryBackoff
	fails := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		conn, err := net.DialTimeout("tcp", wc.Coordinator, wc.DialTimeout)
		if err != nil {
			fails++
			if fails >= wc.MaxRetries {
				return fmt.Errorf("dist: worker %s: %d consecutive connect failures: %w", wc.ID, fails, err)
			}
			wc.Logf("dist: worker %s: connect: %v (retry %d in %v)", wc.ID, err, fails, backoff)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > wc.MaxBackoff {
				backoff = wc.MaxBackoff
			}
			continue
		}
		fails, backoff = 0, wc.RetryBackoff
		err = runSession(ctx, conn, wc)
		conn.Close()
		switch {
		case errors.Is(err, errShutdown):
			wc.Logf("dist: worker %s: run complete, shutting down", wc.ID)
			return nil
		case ctx.Err() != nil:
			return ctx.Err()
		default:
			wc.Logf("dist: worker %s: session ended: %v; re-registering", wc.ID, err)
		}
	}
}

// wsession is one connection's protocol state: the epoch assignment
// (slot, topology, config, routing tables) and the live token shard.
type wsession struct {
	wc   WorkerConfig
	ctx  context.Context
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	epoch       int
	slot, p     int
	scfg        sampler.Config
	v, numDocs  int
	numTokens   int
	blockTokens int
	rows, cols  []int32
	tokens      []cluster.Token
	wk          *cluster.PhaseWorker
}

func runSession(ctx context.Context, conn net.Conn, wc WorkerConfig) error {
	s := &wsession{
		wc: wc, ctx: ctx, conn: conn,
		br: bufio.NewReaderSize(conn, 1<<16),
		bw: bufio.NewWriterSize(conn, 1<<16),
	}
	if err := s.send(MsgHello, (&Hello{Version: ProtoVersion, ID: wc.ID}).Encode()); err != nil {
		return err
	}
	typ, _, err := s.read()
	if err != nil {
		return err
	}
	if typ != MsgWelcome {
		return fmt.Errorf("dist: expected welcome, got %s", typ)
	}
	wc.Logf("dist: worker %s: registered with %s", wc.ID, wc.Coordinator)
	for {
		typ, payload, err := s.next()
		if err != nil {
			if errors.Is(err, errAborted) {
				s.reset()
				continue
			}
			return err
		}
		switch typ {
		case MsgAssign:
			if err := s.handleAssign(payload); err != nil {
				return err
			}
		case MsgPassStart:
			if err := s.runPass(payload); err != nil {
				if errors.Is(err, errAborted) {
					s.reset()
					continue
				}
				return err
			}
		case MsgShardReq:
			if err := s.handleShardReq(payload); err != nil {
				return err
			}
		default:
			// Stale traffic from a superseded epoch (blocks, barriers)
			// can trail an abort; drop it.
		}
	}
}

// reset discards epoch state; the worker idles until the next Assign.
func (s *wsession) reset() {
	s.wk = nil
	s.tokens = nil
	s.rows, s.cols = nil, nil
}

// send writes one frame under the write deadline and flushes it.
func (s *wsession) send(typ MsgType, payload []byte) error {
	if err := s.conn.SetWriteDeadline(time.Now().Add(s.wc.WriteTimeout)); err != nil {
		return err
	}
	if err := WriteFrame(s.bw, typ, payload); err != nil {
		return err
	}
	return s.bw.Flush()
}

// read returns the next raw frame under the read deadline.
func (s *wsession) read() (MsgType, []byte, error) {
	if err := s.conn.SetReadDeadline(time.Now().Add(s.wc.ReadTimeout)); err != nil {
		return 0, nil, err
	}
	return ReadFrame(s.br)
}

// next returns the next frame that is not connection plumbing: pings
// are answered inline, Shutdown and Abort surface as sentinel errors so
// any wait — top-level or mid-pass — unwinds the same way.
func (s *wsession) next() (MsgType, []byte, error) {
	for {
		if err := s.ctx.Err(); err != nil {
			return 0, nil, err
		}
		typ, payload, err := s.read()
		if err != nil {
			return 0, nil, err
		}
		switch typ {
		case MsgPing:
			if err := s.send(MsgPong, payload); err != nil {
				return 0, nil, err
			}
		case MsgShutdown:
			return 0, nil, errShutdown
		case MsgAbort:
			return 0, nil, errAborted
		default:
			return typ, payload, nil
		}
	}
}

// handleAssign adopts a new epoch: decode and validate the shard
// stream, rebuild the phase worker around the assigned RNG stream, and
// store the routing tables.
func (s *wsession) handleAssign(payload []byte) error {
	a, err := DecodeAssign(payload)
	if err != nil {
		return err
	}
	st, err := cluster.DecodeWorkerState(bytes.NewReader(a.Shard), a.K, a.M, a.NumDocs, a.V, a.NumTokens)
	if err != nil {
		return err
	}
	if st.Index != a.Slot || st.Workers != a.P {
		return fmt.Errorf("dist: assign for slot %d/%d carries shard %d/%d", a.Slot, a.P, st.Index, st.Workers)
	}
	s.epoch = a.Epoch
	s.slot, s.p = a.Slot, a.P
	s.scfg = sampler.Config{K: a.K, Alpha: a.Alpha, Beta: a.Beta, M: a.M, Seed: a.Seed}
	s.v, s.numDocs, s.numTokens = a.V, a.NumDocs, a.NumTokens
	s.blockTokens = a.BlockTokens
	s.rows, s.cols = a.Rows, a.Cols
	s.tokens = st.Tokens
	r := rng.New(a.Seed)
	r.SetState(st.RNGState)
	s.wk = cluster.NewPhaseWorker(a.K, r)
	s.wc.Logf("dist: worker %s: assigned slot %d/%d at iter %d (epoch %d, %d tokens)",
		s.wc.ID, a.Slot, a.P, a.Iter, a.Epoch, len(st.Tokens))
	return nil
}

// handleShardReq uploads the current shard state as a dshd stream.
func (s *wsession) handleShardReq(payload []byte) error {
	sy, err := DecodeSync(payload)
	if err != nil {
		return err
	}
	if s.wk == nil || sy.Epoch != s.epoch {
		return nil // stale request from a superseded epoch
	}
	var b bytes.Buffer
	if err := cluster.EncodeWorkerState(&b, &cluster.WorkerState{
		Index:    s.slot,
		Workers:  s.p,
		M:        s.scfg.M,
		RNGState: s.wk.R.State(),
		Tokens:   s.tokens,
	}); err != nil {
		return err
	}
	return s.send(MsgShardState, (&ShardState{Epoch: s.epoch, Iter: sy.Iter, From: s.slot, Shard: b.Bytes()}).Encode())
}

// runPass executes one full training pass: word phase with the
// col→row exchange, doc phase with the row→col exchange, then the
// worker's ck delta.
func (s *wsession) runPass(payload []byte) error {
	if s.wk == nil {
		return fmt.Errorf("dist: pass-start before assign")
	}
	ps, err := DecodePassStart(payload, s.scfg.K)
	if err != nil {
		return err
	}
	if ps.Epoch != s.epoch {
		return nil // stale
	}
	env := &cluster.PhaseEnv{Cfg: s.scfg, V: s.v, CK: ps.CK}
	kept, err := s.phase(env, ps.Iter, PhaseWord)
	if err != nil {
		return err
	}
	s.tokens = kept
	clear(s.wk.CkAcc)
	kept, err = s.phase(env, ps.Iter, PhaseDoc)
	if err != nil {
		return err
	}
	s.tokens = kept
	return s.send(MsgPassEnd, (&PassEnd{Epoch: s.epoch, Iter: ps.Iter, From: s.slot, CkAcc: s.wk.CkAcc}).Encode())
}

// phase runs one phase body over the local tokens, routing finished
// tokens to their next owner in blocks as soon as each fills (the
// paper's compute/communication overlap), then drains incoming blocks
// until the coordinator's barrier.
func (s *wsession) phase(env *cluster.PhaseEnv, iter, phase int) ([]cluster.Token, error) {
	byRow := phase == PhaseDoc
	cluster.GroupSort(s.tokens, byRow)
	kept := make([]cluster.Token, 0, len(s.tokens))
	buckets := make([][]cluster.Token, s.p)
	stride := s.scfg.M + 1
	flush := func(o int) error {
		b := buckets[o]
		if len(b) == 0 {
			return nil
		}
		msg := &Block{
			Epoch: s.epoch, Iter: iter, Phase: phase, From: s.slot, To: o,
			DS:      make([]int32, len(b)),
			WS:      make([]int32, len(b)),
			Payload: make([]int32, 0, len(b)*stride),
		}
		for j, t := range b {
			msg.DS[j], msg.WS[j] = t.D, t.W
			msg.Payload = append(msg.Payload, t.Data...)
		}
		buckets[o] = b[:0]
		return s.send(MsgBlock, msg.Encode())
	}
	var sendErr error
	cluster.ForGroups(s.tokens, byRow, func(group []cluster.Token) {
		if sendErr != nil {
			return
		}
		if phase == PhaseWord {
			env.WordGroup(s.wk, group)
		} else {
			env.DocGroup(s.wk, group)
		}
		for _, t := range group {
			var o int32
			if phase == PhaseWord {
				o = s.rows[t.D]
			} else {
				o = s.cols[t.W]
			}
			if int(o) == s.slot {
				kept = append(kept, t)
				continue
			}
			buckets[o] = append(buckets[o], t)
			if len(buckets[o]) >= s.blockTokens {
				if err := flush(int(o)); err != nil {
					sendErr = err
					return
				}
			}
		}
	})
	if sendErr != nil {
		return nil, sendErr
	}
	for o := range buckets {
		if err := flush(o); err != nil {
			return nil, err
		}
	}
	if err := s.send(MsgPhaseDone, (&Sync{Epoch: s.epoch, Iter: iter, Phase: phase, From: s.slot}).Encode()); err != nil {
		return nil, err
	}
	// Drain incoming blocks until the barrier. The coordinator sends the
	// barrier only after every worker's PhaseDone, and per-connection
	// FIFO ordering guarantees all relayed blocks precede it.
	for {
		typ, payload, err := s.next()
		if err != nil {
			return nil, err
		}
		switch typ {
		case MsgBlock:
			b, err := DecodeBlock(payload, s.scfg.K, s.scfg.M, s.numDocs, s.v)
			if err != nil {
				return nil, err
			}
			if b.Epoch != s.epoch || b.Phase != phase {
				continue // stale
			}
			for j := range b.DS {
				kept = append(kept, cluster.Token{
					D:    b.DS[j],
					W:    b.WS[j],
					Data: b.Payload[j*stride : (j+1)*stride : (j+1)*stride],
				})
			}
		case MsgBarrier:
			sy, err := DecodeSync(payload)
			if err != nil {
				return nil, err
			}
			if sy.Epoch != s.epoch || sy.Phase != phase {
				continue // stale
			}
			return kept, nil
		default:
			return nil, fmt.Errorf("dist: unexpected %s while draining %d-phase blocks", typ, phase)
		}
	}
}
