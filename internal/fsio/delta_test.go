package fsio

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
)

// testDelta builds a small consistent delta: two cells changed on a 4×3
// model, Ck updated to match, fingerprints chained from base.
func testDelta(t *testing.T) *ModelDelta {
	t.Helper()
	d := &ModelDelta{
		V: 4, K: 3, Gen: 1,
		BaseFP: ModelFingerprint(4, 3, make([]int32, 12), make([]int64, 3)),
		Iter:   7, LogLik: -123.5,
		Cells: []DeltaCell{{W: 0, T: 1, Add: 2}, {W: 2, T: 0, Add: -1}, {W: 2, T: 2, Add: 3}},
		Ck:    []int64{4, 9, 6},
	}
	d.NewFP = ChainFingerprint(d.BaseFP, d.Gen, d.Cells, d.Ck)
	return d
}

func TestDeltaRoundTrip(t *testing.T) {
	d := testDelta(t)
	var buf bytes.Buffer
	n, err := d.WriteDelta(&buf)
	if err != nil {
		t.Fatalf("WriteDelta: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteDelta reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadDelta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadDelta: %v", err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, d)
	}
}

func TestDeltaRoundTripEmpty(t *testing.T) {
	// A no-change interval still publishes a delta (the generation and
	// iteration advance); the codec must handle zero cells.
	d := &ModelDelta{V: 2, K: 2, Gen: 3, BaseFP: 42, Iter: 10, LogLik: -1, Ck: []int64{1, 2}}
	d.NewFP = ChainFingerprint(d.BaseFP, d.Gen, d.Cells, d.Ck)
	var buf bytes.Buffer
	if _, err := d.WriteDelta(&buf); err != nil {
		t.Fatalf("WriteDelta: %v", err)
	}
	got, err := ReadDelta(&buf)
	if err != nil {
		t.Fatalf("ReadDelta: %v", err)
	}
	if got.Gen != 3 || len(got.Cells) != 0 || !reflect.DeepEqual(got.Ck, d.Ck) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestDeltaCorruptionRejected(t *testing.T) {
	d := testDelta(t)
	var buf bytes.Buffer
	if _, err := d.WriteDelta(&buf); err != nil {
		t.Fatalf("WriteDelta: %v", err)
	}
	clean := buf.Bytes()

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"truncated header", func(b []byte) []byte { return b[:12] }, "reading delta header"},
		{"truncated body", func(b []byte) []byte { return b[:len(b)/2] }, ""},
		{"truncated checksum", func(b []byte) []byte { return b[:len(b)-2] }, "checksum"},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, "bad magic"},
		{"bit flip in body", func(b []byte) []byte { b[len(DeltaMagic)+20] ^= 0x01; return b }, ""},
		{"bit flip in checksum", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }, "checksum"},
		{"empty file", func(b []byte) []byte { return nil }, "reading delta header"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), clean...))
			_, err := ReadDelta(bytes.NewReader(b))
			if err == nil {
				t.Fatalf("ReadDelta accepted %s", tc.name)
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestDeltaValidate(t *testing.T) {
	base := func() *ModelDelta { return testDelta(t) }
	reseal := func(d *ModelDelta) *ModelDelta {
		d.NewFP = ChainFingerprint(d.BaseFP, d.Gen, d.Cells, d.Ck)
		return d
	}
	cases := []struct {
		name   string
		mutate func(*ModelDelta) *ModelDelta
	}{
		{"zero V", func(d *ModelDelta) *ModelDelta { d.V = 0; return reseal(d) }},
		{"gen zero", func(d *ModelDelta) *ModelDelta { d.Gen = 0; return reseal(d) }},
		{"negative iter", func(d *ModelDelta) *ModelDelta { d.Iter = -1; return reseal(d) }},
		{"NaN loglik", func(d *ModelDelta) *ModelDelta { d.LogLik = math.NaN(); return reseal(d) }},
		{"short Ck", func(d *ModelDelta) *ModelDelta { d.Ck = d.Ck[:2]; return reseal(d) }},
		{"negative Ck", func(d *ModelDelta) *ModelDelta { d.Ck[1] = -1; return reseal(d) }},
		{"cell word out of range", func(d *ModelDelta) *ModelDelta { d.Cells[2].W = 99; return reseal(d) }},
		{"cell topic out of range", func(d *ModelDelta) *ModelDelta { d.Cells[0].T = -1; return reseal(d) }},
		{"zero add", func(d *ModelDelta) *ModelDelta { d.Cells[1].Add = 0; return reseal(d) }},
		{"unsorted cells", func(d *ModelDelta) *ModelDelta {
			d.Cells[0], d.Cells[1] = d.Cells[1], d.Cells[0]
			return reseal(d)
		}},
		{"duplicate cell", func(d *ModelDelta) *ModelDelta {
			d.Cells[1] = d.Cells[0]
			return reseal(d)
		}},
		{"forged NewFP", func(d *ModelDelta) *ModelDelta { d.NewFP ^= 1; return d }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.mutate(base())
			if err := d.Validate(); err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
			if _, err := d.WriteDelta(io.Discard); err == nil {
				t.Fatalf("WriteDelta accepted %s", tc.name)
			}
		})
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("Validate rejected a consistent delta: %v", err)
	}
}

func TestDeltaHugeCellCountRejectedCheaply(t *testing.T) {
	// A header that declares billions of cells but carries none must
	// fail fast on the dims/count sanity checks (or at EOF with a
	// bounded allocation), never by committing the declared size.
	d := testDelta(t)
	var buf bytes.Buffer
	if _, err := d.WriteDelta(&buf); err != nil {
		t.Fatalf("WriteDelta: %v", err)
	}
	b := buf.Bytes()
	// nCells is the 8th int64 field of the body: offset 8 (magic) + 7*8.
	off := len(DeltaMagic) + 56
	for i := 0; i < 8; i++ {
		b[off+i] = 0xff
	}
	b[off+7] = 0x7f // a huge positive count
	_, err := ReadDelta(bytes.NewReader(b))
	if err == nil {
		t.Fatal("ReadDelta accepted an absurd cell count")
	}
}

func TestChainFingerprintSensitivity(t *testing.T) {
	d := testDelta(t)
	fp := ChainFingerprint(d.BaseFP, d.Gen, d.Cells, d.Ck)
	if fp2 := ChainFingerprint(d.BaseFP+1, d.Gen, d.Cells, d.Ck); fp2 == fp {
		t.Fatal("fingerprint ignores base")
	}
	if fp2 := ChainFingerprint(d.BaseFP, d.Gen+1, d.Cells, d.Ck); fp2 == fp {
		t.Fatal("fingerprint ignores generation")
	}
	cells := append([]DeltaCell(nil), d.Cells...)
	cells[0].Add++
	if fp2 := ChainFingerprint(d.BaseFP, d.Gen, cells, d.Ck); fp2 == fp {
		t.Fatal("fingerprint ignores cells")
	}
	ck := append([]int64(nil), d.Ck...)
	ck[0]++
	if fp2 := ChainFingerprint(d.BaseFP, d.Gen, d.Cells, ck); fp2 == fp {
		t.Fatal("fingerprint ignores Ck")
	}
}

func TestModelFingerprintSensitivity(t *testing.T) {
	cw := []int32{1, 2, 3, 4}
	ck := []int64{4, 6}
	fp := ModelFingerprint(2, 2, cw, ck)
	cw2 := append([]int32(nil), cw...)
	cw2[3]++
	if ModelFingerprint(2, 2, cw2, ck) == fp {
		t.Fatal("fingerprint ignores Cw")
	}
	ck2 := append([]int64(nil), ck...)
	ck2[0]++
	if ModelFingerprint(2, 2, cw, ck2) == fp {
		t.Fatal("fingerprint ignores Ck")
	}
	if ModelFingerprint(1, 4, cw, ck) == fp {
		t.Fatal("fingerprint ignores dims")
	}
}

func TestDiffCounts(t *testing.T) {
	old := []int32{1, 0, 2, 5, 0, 0}
	new := []int32{1, 3, 2, 4, 0, 7}
	cells := DiffCounts(2, 3, old, new)
	want := []DeltaCell{{W: 0, T: 1, Add: 3}, {W: 1, T: 0, Add: -1}, {W: 1, T: 2, Add: 7}}
	if !reflect.DeepEqual(cells, want) {
		t.Fatalf("DiffCounts = %+v, want %+v", cells, want)
	}
	// Applying the cells to old must reproduce new.
	got := append([]int32(nil), old...)
	for _, c := range cells {
		got[int(c.W)*3+int(c.T)] += c.Add
	}
	if !reflect.DeepEqual(got, new) {
		t.Fatalf("applying cells: got %v, want %v", got, new)
	}
	if cells := DiffCounts(2, 3, old, old); len(cells) != 0 {
		t.Fatalf("DiffCounts of identical counts = %+v, want none", cells)
	}
}

func TestReadDeltaPropagatesEOF(t *testing.T) {
	// Reading from an empty reader must surface an io error wrapped,
	// never a panic.
	_, err := ReadDelta(bytes.NewReader(nil))
	if err == nil || !errors.Is(err, io.EOF) {
		t.Fatalf("ReadDelta(empty) = %v, want wrapped io.EOF", err)
	}
}
