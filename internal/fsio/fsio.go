// Package fsio holds the small file-I/O primitives shared by every
// durable format in this repository (model snapshots, training
// checkpoints): atomic file replacement and checksum-on-read. They live
// in one place so a durability fix lands everywhere at once instead of
// drifting between per-format copies.
package fsio

import (
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// AtomicWriteFile writes a file via temp-file + fsync + rename: a
// process hot-watching path can never observe a partial write — it sees
// the old complete file or the new complete file — and a crash
// mid-write leaves the previous file intact. pattern names the temp
// file (os.CreateTemp semantics; use a dot-prefix so watchers skip it).
// write's byte count is returned on success.
func AtomicWriteFile(path, pattern string, write func(io.Writer) (int64, error)) (int64, error) {
	f, err := os.CreateTemp(filepath.Dir(path), pattern)
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	n, err := write(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return n, nil
}

// CRCReader hashes exactly the bytes its consumer reads, so a trailing
// checksum covers the payload regardless of any buffering underneath.
type CRCReader struct {
	R   io.Reader
	CRC hash.Hash32
}

// NewCRCReader returns a CRCReader over r using CRC32 (IEEE), the
// checksum every durable format here trails with.
func NewCRCReader(r io.Reader) *CRCReader {
	return &CRCReader{R: r, CRC: crc32.NewIEEE()}
}

// Read reads from the underlying reader, folding the bytes actually
// delivered into the checksum.
func (c *CRCReader) Read(p []byte) (int, error) {
	n, err := c.R.Read(p)
	c.CRC.Write(p[:n])
	return n, err
}

// Sum32 returns the checksum of everything read so far.
func (c *CRCReader) Sum32() uint32 { return c.CRC.Sum32() }

// CRCWriter hashes exactly the bytes written through it, so a format
// can emit its body through one writer and trail the checksum without
// a second pass.
type CRCWriter struct {
	W   io.Writer
	CRC hash.Hash32
}

// NewCRCWriter returns a CRCWriter over w using CRC32 (IEEE).
func NewCRCWriter(w io.Writer) *CRCWriter {
	return &CRCWriter{W: w, CRC: crc32.NewIEEE()}
}

// Write writes to the underlying writer, folding the bytes actually
// written into the checksum.
func (c *CRCWriter) Write(p []byte) (int, error) {
	n, err := c.W.Write(p)
	c.CRC.Write(p[:n])
	return n, err
}

// Sum32 returns the checksum of everything written so far.
func (c *CRCWriter) Sum32() uint32 { return c.CRC.Sum32() }
