package fsio

// The WARPDLT incremental model delta format. A delta file carries the
// changed (word, topic) cells of the word-topic count matrix C_wk plus
// the new global topic-count vector C_k between two published states of
// one model, stamped with a chain fingerprint of the state it applies
// to and a contiguous generation number. The train-side writer
// (internal/train, cmd/warplda-train -publish-delta) and the serve-side
// folder (internal/registry) share this one codec so the two ends of
// the publish→fold pipeline cannot drift; docs/FORMATS.md holds the
// normative byte-level specification.
//
// Layout (all integers little endian):
//
//	"WARPDLT\x01"                                   8-byte magic
//	-- checksummed body --
//	v, k              int64 ×2                      model dims
//	gen               int64                         1-based chain position
//	baseFP, newFP     uint64 ×2                     chain fingerprints
//	iter              int64                         producing iteration
//	logLik            float64                       trained log likelihood
//	nCells            int64
//	cells             nCells × (w, t, add int32)    C_wk += add, (w,t) ascending
//	ck                k × int64                     new absolute C_k
//	-- end body --
//	crc32             uint32                        IEEE, over the body
//
// The chain invariant: a fresh snapshot's state fingerprint is
// ModelFingerprint over its counts; each delta's BaseFP must equal the
// current chain fingerprint and its NewFP must equal
// ChainFingerprint(BaseFP, delta). A folder therefore detects stale,
// foreign, reordered, and gapped deltas before any count is touched.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// DeltaMagic starts every WARPDLT file.
const DeltaMagic = "WARPDLT\x01"

// MaxDeltaCells bounds the cell count a delta may declare — the same
// V·K ceiling the model format enforces — so a corrupt or hostile
// header cannot trigger a multi-gigabyte allocation before the CRC
// check has seen the bytes.
const MaxDeltaCells = 1 << 31

// DeltaCell is one changed entry of the word-topic count matrix:
// C[W, T] += Add. Add may be negative; the folded count must remain
// non-negative.
type DeltaCell struct {
	W, T, Add int32
}

// ModelDelta is one decoded WARPDLT file: the incremental update that
// advances a served model from chain state BaseFP (generation Gen-1) to
// NewFP (generation Gen).
type ModelDelta struct {
	// V, K are the model dims the delta applies to; a delta never
	// changes a model's shape.
	V, K int
	// Gen is the delta's 1-based position in its chain. Generation g
	// applies to the state produced by generation g-1; generation 1
	// applies to the freshly published base snapshot.
	Gen int64
	// BaseFP is the chain fingerprint of the state this delta applies
	// to; NewFP the fingerprint after applying it, always equal to
	// ChainFingerprint(BaseFP, cells, ck).
	BaseFP, NewFP uint64
	// Iter is the training iteration that produced the new state;
	// LogLik its trained log likelihood (the served model's metadata).
	Iter   int64
	LogLik float64
	// Cells are the changed C_wk entries in ascending (W, T) order, at
	// most one per (W, T) pair.
	Cells []DeltaCell
	// Ck is the new absolute topic-count vector (length K). It is
	// redundant with Cells — Ck[t] must equal the old value plus the sum
	// of the cell adds in column t — and the folder verifies exactly
	// that, so a writer/reader disagreement cannot silently skew Φ̂.
	Ck []int64
}

// fnvOffset and fnvPrime are the FNV-1a 64-bit parameters used by the
// chain fingerprints below.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// ModelFingerprint hashes a model's count state — dims, the full C_wk
// matrix, and C_k — into the 64-bit chain fingerprint a freshly
// published snapshot starts its delta chain from. It is FNV-1a over the
// little-endian encoding of (v, k, cw..., ck...).
func ModelFingerprint(v, k int, cw []int32, ck []int64) uint64 {
	h := fnvU64(fnvU64(uint64(fnvOffset), uint64(v)), uint64(k))
	for _, c := range cw {
		h = fnvU64(h, uint64(uint32(c)))
	}
	for _, c := range ck {
		h = fnvU64(h, uint64(c))
	}
	return h
}

// ChainFingerprint advances a chain fingerprint across one delta:
// FNV-1a over the base fingerprint, the generation, every cell, and the
// new C_k vector. Both the writer (stamping NewFP) and the folder
// (verifying it, then adopting it as the current state fingerprint)
// call this one function, so the chain cannot fork silently.
func ChainFingerprint(base uint64, gen int64, cells []DeltaCell, ck []int64) uint64 {
	h := fnvU64(fnvU64(uint64(fnvOffset), base), uint64(gen))
	for _, c := range cells {
		h = fnvU64(h, uint64(uint32(c.W)))
		h = fnvU64(h, uint64(uint32(c.T)))
		h = fnvU64(h, uint64(uint32(c.Add)))
	}
	for _, c := range ck {
		h = fnvU64(h, uint64(c))
	}
	return h
}

// Validate checks the delta's internal invariants — the ones decidable
// without the base state it applies to: plausible dims, in-range
// strictly-ascending cells, non-negative Ck, and a NewFP that matches
// the chain hash. ReadDelta runs it after the CRC check; a writer bug
// (or a hand-built file) fails here, not at fold time.
func (d *ModelDelta) Validate() error {
	const maxDim = 1 << 31
	if d.V <= 0 || d.K <= 0 || int64(d.V) > maxDim || int64(d.K) > maxDim || int64(d.V)*int64(d.K) > maxDim {
		return fmt.Errorf("fsio: implausible delta dims V=%d K=%d", d.V, d.K)
	}
	if d.Gen < 1 {
		return fmt.Errorf("fsio: delta generation %d, want >= 1", d.Gen)
	}
	if d.Iter < 0 {
		return fmt.Errorf("fsio: delta iteration %d, want >= 0", d.Iter)
	}
	if math.IsNaN(d.LogLik) {
		return fmt.Errorf("fsio: delta log-likelihood is NaN")
	}
	if len(d.Ck) != d.K {
		return fmt.Errorf("fsio: delta has %d topic counts, want K=%d", len(d.Ck), d.K)
	}
	if int64(len(d.Cells)) > int64(d.V)*int64(d.K) {
		return fmt.Errorf("fsio: delta declares %d cells for a %d×%d model", len(d.Cells), d.V, d.K)
	}
	for i, c := range d.Cells {
		if c.W < 0 || int(c.W) >= d.V || c.T < 0 || int(c.T) >= d.K {
			return fmt.Errorf("fsio: delta cell %d = (%d,%d) outside %d×%d", i, c.W, c.T, d.V, d.K)
		}
		if c.Add == 0 {
			return fmt.Errorf("fsio: delta cell %d = (%d,%d) carries a zero add", i, c.W, c.T)
		}
		if i > 0 {
			p := d.Cells[i-1]
			if c.W < p.W || (c.W == p.W && c.T <= p.T) {
				return fmt.Errorf("fsio: delta cells not in strictly ascending (w,t) order at index %d", i)
			}
		}
	}
	for t, c := range d.Ck {
		if c < 0 {
			return fmt.Errorf("fsio: negative delta topic count Ck[%d] = %d", t, c)
		}
	}
	if want := ChainFingerprint(d.BaseFP, d.Gen, d.Cells, d.Ck); d.NewFP != want {
		return fmt.Errorf("fsio: delta chain fingerprint mismatch (file %016x, computed %016x)", d.NewFP, want)
	}
	return nil
}

// WriteDelta serializes d in the WARPDLT format (magic, checksummed
// body, CRC32 trailer) and returns the byte count. The delta is
// validated first; writing an inconsistent delta is refused.
func (d *ModelDelta) WriteDelta(w io.Writer) (int64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(DeltaMagic); err != nil {
		return 0, err
	}
	n := int64(len(DeltaMagic))
	cw := NewCRCWriter(bw)
	write := func(v any) error {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	for _, v := range []any{
		int64(d.V), int64(d.K), d.Gen, d.BaseFP, d.NewFP, d.Iter, d.LogLik,
		int64(len(d.Cells)),
	} {
		if err := write(v); err != nil {
			return n, err
		}
	}
	for _, c := range d.Cells {
		if err := write([3]int32{c.W, c.T, c.Add}); err != nil {
			return n, err
		}
	}
	if err := write(d.Ck); err != nil {
		return n, err
	}
	if err := binary.Write(bw, binary.LittleEndian, cw.Sum32()); err != nil {
		return n, err
	}
	n += 4
	return n, bw.Flush()
}

// deltaAllocChunk bounds how many entries a reader allocates ahead of
// the bytes actually arriving, so a truncated or hostile file fails
// with a small footprint instead of committing the full declared size.
const deltaAllocChunk = 64 << 10

// ReadDelta deserializes one WARPDLT file: magic, body, CRC trailer,
// then Validate. Allocation is bounded by the bytes actually read, not
// by the header's declared counts, so a hostile input can neither
// panic the decoder nor over-allocate.
func ReadDelta(r io.Reader) (*ModelDelta, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(DeltaMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("fsio: reading delta header: %w", err)
	}
	if string(magic) != DeltaMagic {
		return nil, fmt.Errorf("fsio: not a model delta (bad magic)")
	}
	cr := NewCRCReader(br)
	read := func(v any) error { return binary.Read(cr, binary.LittleEndian, v) }
	var v64, k64, gen, iter, nCells int64
	var baseFP, newFP uint64
	var logLik float64
	for _, p := range []any{&v64, &k64, &gen, &baseFP, &newFP, &iter, &logLik, &nCells} {
		if err := read(p); err != nil {
			return nil, fmt.Errorf("fsio: reading delta header: %w", err)
		}
	}
	const maxDim = 1 << 31
	if v64 <= 0 || k64 <= 0 || v64 > maxDim || k64 > maxDim || v64*k64 > maxDim {
		return nil, fmt.Errorf("fsio: implausible delta dims V=%d K=%d", v64, k64)
	}
	if nCells < 0 || nCells > MaxDeltaCells || nCells > v64*k64 {
		return nil, fmt.Errorf("fsio: delta declares %d cells for a %d×%d model", nCells, v64, k64)
	}
	d := &ModelDelta{
		V: int(v64), K: int(k64), Gen: gen,
		BaseFP: baseFP, NewFP: newFP, Iter: iter, LogLik: logLik,
	}
	// Chunked growth: pre-size to at most one chunk and extend as bytes
	// arrive, so the allocation high-water mark tracks the file's real
	// size, not the header's claim.
	d.Cells = make([]DeltaCell, 0, min64(nCells, deltaAllocChunk))
	var raw [3]int32
	for i := int64(0); i < nCells; i++ {
		if err := read(&raw); err != nil {
			return nil, fmt.Errorf("fsio: reading delta cell %d/%d: %w", i, nCells, err)
		}
		d.Cells = append(d.Cells, DeltaCell{W: raw[0], T: raw[1], Add: raw[2]})
	}
	d.Ck = make([]int64, 0, min64(k64, deltaAllocChunk))
	for t := int64(0); t < k64; t++ {
		var c int64
		if err := read(&c); err != nil {
			return nil, fmt.Errorf("fsio: reading delta topic counts: %w", err)
		}
		d.Ck = append(d.Ck, c)
	}
	var want uint32
	if err := binary.Read(br, binary.LittleEndian, &want); err != nil {
		return nil, fmt.Errorf("fsio: reading delta checksum: %w", err)
	}
	if got := cr.Sum32(); got != want {
		return nil, fmt.Errorf("fsio: delta checksum mismatch (file %08x, computed %08x): torn or corrupt file", want, got)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// DiffCounts computes the delta cells between two count matrices of the
// same V×K shape, in the ascending (w,t) order WARPDLT requires. It is
// the writer-side inverse of the fold: applying the returned cells to
// old yields new.
func DiffCounts(v, k int, old, new []int32) []DeltaCell {
	var cells []DeltaCell
	for w := 0; w < v; w++ {
		row0 := old[w*k : (w+1)*k]
		row1 := new[w*k : (w+1)*k]
		for t := 0; t < k; t++ {
			if row0[t] != row1[t] {
				cells = append(cells, DeltaCell{W: int32(w), T: int32(t), Add: row1[t] - row0[t]})
			}
		}
	}
	return cells
}
