package fsio

import (
	"bytes"
	"testing"
)

// FuzzReadDelta throws arbitrary bytes at the WARPDLT decoder. The
// decoder's contract on hostile input: return an error — never panic,
// and never allocate beyond what the bytes actually delivered justify
// (enforced structurally by the chunked growth in ReadDelta; the fuzzer
// catches the panic half and any future regression that reintroduces
// header-trusting allocation large enough to OOM the worker).
func FuzzReadDelta(f *testing.F) {
	// Seed 1: a well-formed delta, so the fuzzer starts with deep
	// coverage of the happy path and mutates from there.
	d := &ModelDelta{
		V: 4, K: 3, Gen: 2,
		BaseFP: 0x1234, Iter: 5, LogLik: -10.25,
		Cells: []DeltaCell{{W: 0, T: 0, Add: 1}, {W: 3, T: 2, Add: -2}},
		Ck:    []int64{3, 0, 1},
	}
	d.NewFP = ChainFingerprint(d.BaseFP, d.Gen, d.Cells, d.Ck)
	var buf bytes.Buffer
	if _, err := d.WriteDelta(&buf); err != nil {
		f.Fatalf("seed delta: %v", err)
	}
	f.Add(buf.Bytes())
	// Seed 2: magic only. Seed 3: empty. Seed 4: magic + garbage.
	f.Add([]byte(DeltaMagic))
	f.Add([]byte{})
	f.Add(append([]byte(DeltaMagic), bytes.Repeat([]byte{0xff}, 64)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadDelta(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything the decoder accepts must re-validate and re-encode.
		if verr := got.Validate(); verr != nil {
			t.Fatalf("decoded delta fails Validate: %v", verr)
		}
		var out bytes.Buffer
		if _, werr := got.WriteDelta(&out); werr != nil {
			t.Fatalf("re-encoding accepted delta: %v", werr)
		}
	})
}
