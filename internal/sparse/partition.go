package sparse

import (
	"sort"

	"warplda/internal/rng"
)

// A Partition assigns each of n items (words/columns or docs/rows) to one
// of p parts; Assign[i] is the part of item i.
type Partition struct {
	P      int
	Assign []int32
}

// Loads returns the total weight per part.
func (pt *Partition) Loads(weights []int) []int64 {
	loads := make([]int64, pt.P)
	for i, part := range pt.Assign {
		loads[part] += int64(weights[i])
	}
	return loads
}

// ImbalanceIndex is the paper's Figure-4 metric:
//
//	(weight of the heaviest part) / (mean part weight) − 1
//
// Zero is a perfectly balanced partition.
func ImbalanceIndex(loads []int64) float64 {
	if len(loads) == 0 {
		return 0
	}
	var max, sum int64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(loads))
	return float64(max)/mean - 1
}

// GreedyPartition implements the paper's proposed strategy: sort items by
// weight in decreasing order, then place each item on the currently
// lightest part. With a long tail of light items this is near-optimal.
func GreedyPartition(weights []int, p int) *Partition {
	pt := &Partition{P: p, Assign: make([]int32, len(weights))}
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return weights[order[a]] > weights[order[b]] })
	loads := make([]int64, p)
	for _, i := range order {
		best := 0
		for j := 1; j < p; j++ {
			if loads[j] < loads[best] {
				best = j
			}
		}
		pt.Assign[i] = int32(best)
		loads[best] += int64(weights[i])
	}
	return pt
}

// StaticPartition implements the "static" baseline of Figure 4: randomly
// shuffle the items, then split into p parts with an equal number of
// items each (ignoring weights).
func StaticPartition(weights []int, p int, r *rng.RNG) *Partition {
	n := len(weights)
	pt := &Partition{P: p, Assign: make([]int32, n)}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for pos, item := range perm {
		pt.Assign[item] = int32(pos * p / n)
	}
	return pt
}

// DynamicPartition implements the "dynamic" baseline of Figure 4: parts
// are contiguous slices of the item sequence (no shuffle) but may contain
// different numbers of items; the cut points are chosen left to right so
// each part closes once it reaches the ideal weight total/p.
func DynamicPartition(weights []int, p int) *Partition {
	n := len(weights)
	pt := &Partition{P: p, Assign: make([]int32, n)}
	var total int64
	for _, w := range weights {
		total += int64(w)
	}
	ideal := float64(total) / float64(p)
	part := 0
	var acc int64
	for i, w := range weights {
		remainingItems := n - i
		remainingParts := p - part
		// Never strand later parts with zero items.
		if remainingItems > remainingParts && part < p-1 && float64(acc)+float64(w)/2 >= ideal*float64(part+1) {
			part++
		}
		pt.Assign[i] = int32(part)
		acc += int64(w)
	}
	return pt
}
