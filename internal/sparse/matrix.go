// Package sparse implements the distributed sparse-matrix framework of
// the WarpLDA paper (Section 5): a D×V matrix of per-token entries with
// exactly three operations — AddEntry at initialization, VisitByRow and
// VisitByColumn during training.
//
// The data layout follows Section 5.2: only the CSC (column-major) copy
// of the entry data is stored, plus a pointer array (PCSR) that lets row
// visits reach their entries by indirection. Entries within each column
// are sorted by row id, so a row-order sweep touches every column's
// entries front to back and each fetched cache line is fully consumed
// before eviction.
//
// The package also provides the column partitioners of Section 5.3.2
// (greedy, static-random, dynamic-contiguous) and the imbalance index of
// Figure 4.
package sparse

import "fmt"

// Matrix is the frozen sparse matrix. Each entry carries Stride int32
// values of user data (for WarpLDA: the topic assignment plus M
// proposals). Build one with a Builder.
type Matrix struct {
	Rows, Cols, Stride int

	// CSC storage: entries are ordered by (column, row).
	colStart []int32 // len Cols+1; entry indices of each column
	rowID    []int32 // len NNZ; row of each entry, ascending within a column
	colID    []int32 // len NNZ; column of each entry (for O(1) RowView.Col)
	data     []int32 // len NNZ*Stride; entry payloads in CSC order

	// PCSR: for each row, the CSC indices of its entries in column order.
	rowStart []int32 // len Rows+1
	rowPtr   []int32 // len NNZ; CSC index of each row entry
}

// Builder accumulates entries before freezing them into a Matrix.
type Builder struct {
	rows, cols, stride int
	entryRow, entryCol []int32
}

// NewBuilder returns a builder for a rows×cols matrix whose entries carry
// stride int32 values each.
func NewBuilder(rows, cols, stride int) *Builder {
	if rows <= 0 || cols <= 0 || stride <= 0 {
		panic("sparse: non-positive dimension")
	}
	return &Builder{rows: rows, cols: cols, stride: stride}
}

// AddEntry records an entry at (row, col). Duplicate cells are allowed —
// a word may occur several times in one document. Payloads start zeroed.
func (b *Builder) AddEntry(row, col int) {
	if row < 0 || row >= b.rows || col < 0 || col >= b.cols {
		panic(fmt.Sprintf("sparse: AddEntry(%d,%d) outside %dx%d", row, col, b.rows, b.cols))
	}
	b.entryRow = append(b.entryRow, int32(row))
	b.entryCol = append(b.entryCol, int32(col))
}

// NNZ returns the number of entries added so far.
func (b *Builder) NNZ() int { return len(b.entryRow) }

// FreezeShuffled is Freeze with the entry order randomly permuted first
// (seeded deterministically). Columns then hold their entries in a
// scrambled row order, defeating the cache-line reuse that Section 5.2's
// sorted layout provides — the "unsorted CSC" ablation. Note that row
// views then no longer preserve token insertion order.
func (b *Builder) FreezeShuffled(seed uint64) *Matrix {
	// xorshift-style shuffle without importing the rng package (avoids a
	// dependency cycle risk and keeps sparse self-contained).
	s := seed*2862933555777941757 + 3037000493
	next := func(n int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(n))
	}
	for i := len(b.entryRow) - 1; i > 0; i-- {
		j := next(i + 1)
		b.entryRow[i], b.entryRow[j] = b.entryRow[j], b.entryRow[i]
		b.entryCol[i], b.entryCol[j] = b.entryCol[j], b.entryCol[i]
	}
	return b.freeze(false)
}

// Freeze builds the Matrix. The builder should not be reused afterwards.
//
// Entries are placed in CSC order sorted by (col, row) using two stable
// counting passes (sort by row, then by column), which is O(NNZ + D + V)
// and yields the within-column row ordering Section 5.2 requires.
func (b *Builder) Freeze() *Matrix { return b.freeze(true) }

func (b *Builder) freeze(sortRows bool) *Matrix {
	nnz := len(b.entryRow)
	m := &Matrix{
		Rows: b.rows, Cols: b.cols, Stride: b.stride,
		colStart: make([]int32, b.cols+1),
		rowID:    make([]int32, nnz),
		colID:    make([]int32, nnz),
		data:     make([]int32, nnz*b.stride),
		rowStart: make([]int32, b.rows+1),
		rowPtr:   make([]int32, nnz),
	}

	// Pass 1: stable counting sort of entry indices by row (skipped for
	// the unsorted-CSC ablation, where insertion order is used directly).
	rowCount := make([]int32, b.rows+1)
	for _, r := range b.entryRow {
		rowCount[r+1]++
	}
	for r := 0; r < b.rows; r++ {
		rowCount[r+1] += rowCount[r]
	}
	copy(m.rowStart, rowCount)
	byRow := make([]int32, nnz)
	if sortRows {
		next := make([]int32, b.rows)
		copy(next, rowCount[:b.rows])
		for i := 0; i < nnz; i++ {
			r := b.entryRow[i]
			byRow[next[r]] = int32(i)
			next[r]++
		}
	} else {
		for i := range byRow {
			byRow[i] = int32(i)
		}
	}

	// Pass 2: stable counting sort of byRow by column → CSC order with
	// rows ascending inside each column.
	colCount := make([]int32, b.cols+1)
	for _, c := range b.entryCol {
		colCount[c+1]++
	}
	for c := 0; c < b.cols; c++ {
		colCount[c+1] += colCount[c]
	}
	copy(m.colStart, colCount)
	nextC := make([]int32, b.cols)
	copy(nextC, colCount[:b.cols])
	for _, i := range byRow {
		c := b.entryCol[i]
		pos := nextC[c]
		nextC[c]++
		m.rowID[pos] = b.entryRow[i]
		m.colID[pos] = c
	}

	// Pass 3: PCSR pointers. Walk entries in row-major order; for each
	// row the CSC positions are discovered column by column.
	// Re-walk byRow and, for each entry, claim the next free CSC slot of
	// its column — but slots were just assigned in the same order, so we
	// can redo the scan with fresh per-column cursors.
	copy(nextC, colCount[:b.cols])
	nextR := make([]int32, b.rows)
	copy(nextR, m.rowStart[:b.rows])
	for _, i := range byRow {
		c := b.entryCol[i]
		r := b.entryRow[i]
		pos := nextC[c]
		nextC[c]++
		m.rowPtr[nextR[r]] = pos
		nextR[r]++
	}

	b.entryRow, b.entryCol = nil, nil
	return m
}

// NNZ returns the number of entries.
func (m *Matrix) NNZ() int { return len(m.rowID) }

// Payloads returns the backing payload array — NNZ()*Stride int32
// values in CSC entry order, the same storage the row and column views
// expose entry by entry. It exists for bulk state snapshot/restore:
// copying it out captures every entry's payload, and writing the same
// bytes back restores them, without touching the (immutable) structure
// arrays. Callers must not resize it.
func (m *Matrix) Payloads() []int32 { return m.data }

// ColView is the contiguous slice of a column's entries.
type ColView struct {
	m     *Matrix
	start int32
	n     int32
}

// Len returns the number of entries in the column.
func (v ColView) Len() int { return int(v.n) }

// Row returns the row id of the i-th entry (ascending in i).
func (v ColView) Row(i int) int32 { return v.m.rowID[v.start+int32(i)] }

// Data returns the mutable payload of the i-th entry.
func (v ColView) Data(i int) []int32 {
	s := (v.start + int32(i)) * int32(v.m.Stride)
	return v.m.data[s : s+int32(v.m.Stride)]
}

// RowView is the indirect view of a row's entries, in column order.
type RowView struct {
	m     *Matrix
	start int32
	n     int32
}

// Len returns the number of entries in the row.
func (v RowView) Len() int { return int(v.n) }

// Col returns the column id of the i-th entry (ascending in i).
func (v RowView) Col(i int) int32 {
	return v.m.colID[v.m.rowPtr[v.start+int32(i)]]
}

// Data returns the mutable payload of the i-th entry. The access is
// indirect (through PCSR) into the CSC array.
func (v RowView) Data(i int) []int32 {
	s := v.m.rowPtr[v.start+int32(i)] * int32(v.m.Stride)
	return v.m.data[s : s+int32(v.m.Stride)]
}

// EntryIndex returns the CSC entry index of the row's i-th entry: its
// payload occupies Payloads()[idx*Stride : (idx+1)*Stride]. It lets
// row-partitioned serializers address a scratch copy of the payload
// array without going through the live Data view.
func (v RowView) EntryIndex(i int) int {
	return int(v.m.rowPtr[v.start+int32(i)])
}

// Column returns the view of column c.
func (m *Matrix) Column(c int) ColView {
	return ColView{m: m, start: m.colStart[c], n: m.colStart[c+1] - m.colStart[c]}
}

// RowOf returns the view of row r.
func (m *Matrix) RowOf(r int) RowView {
	return RowView{m: m, start: m.rowStart[r], n: m.rowStart[r+1] - m.rowStart[r]}
}

// VisitByColumn calls fn for every column in increasing column order.
// Entry payloads may be mutated through the view.
func (m *Matrix) VisitByColumn(fn func(col int, v ColView)) {
	for c := 0; c < m.Cols; c++ {
		fn(c, m.Column(c))
	}
}

// VisitByRow calls fn for every row in increasing row order.
func (m *Matrix) VisitByRow(fn func(row int, v RowView)) {
	for r := 0; r < m.Rows; r++ {
		fn(r, m.RowOf(r))
	}
}
