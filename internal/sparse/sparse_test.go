package sparse

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"warplda/internal/rng"
)

// buildRandom creates a random matrix plus a reference entry list.
func buildRandom(seed uint64, rows, cols, nnz, stride int) (*Matrix, [][2]int32) {
	r := rng.New(seed)
	b := NewBuilder(rows, cols, stride)
	ref := make([][2]int32, nnz)
	for i := 0; i < nnz; i++ {
		row, col := int32(r.Intn(rows)), int32(r.Intn(cols))
		b.AddEntry(int(row), int(col))
		ref[i] = [2]int32{row, col}
	}
	return b.Freeze(), ref
}

func TestColumnsSortedByRow(t *testing.T) {
	m, _ := buildRandom(1, 40, 30, 500, 2)
	for c := 0; c < m.Cols; c++ {
		v := m.Column(c)
		for i := 1; i < v.Len(); i++ {
			if v.Row(i) < v.Row(i-1) {
				t.Fatalf("column %d not sorted by row", c)
			}
		}
	}
}

func TestEntriesPreserved(t *testing.T) {
	m, ref := buildRandom(2, 20, 25, 300, 1)
	if m.NNZ() != len(ref) {
		t.Fatalf("NNZ = %d, want %d", m.NNZ(), len(ref))
	}
	// Multiset of (row, col) pairs must match.
	want := map[[2]int32]int{}
	for _, e := range ref {
		want[e]++
	}
	got := map[[2]int32]int{}
	m.VisitByColumn(func(col int, v ColView) {
		for i := 0; i < v.Len(); i++ {
			got[[2]int32{v.Row(i), int32(col)}]++
		}
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("column visit lost or invented entries")
	}
	got = map[[2]int32]int{}
	m.VisitByRow(func(row int, v RowView) {
		for i := 0; i < v.Len(); i++ {
			got[[2]int32{int32(row), v.Col(i)}]++
		}
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("row visit lost or invented entries")
	}
}

func TestRowAndColumnSeeSameData(t *testing.T) {
	m, _ := buildRandom(3, 15, 15, 200, 3)
	// Stamp every entry with a unique id via column views.
	id := int32(0)
	m.VisitByColumn(func(col int, v ColView) {
		for i := 0; i < v.Len(); i++ {
			d := v.Data(i)
			d[0] = id
			d[1] = int32(col)
			d[2] = v.Row(i)
			id++
		}
	})
	// Row views must observe the same payloads with consistent metadata.
	seen := map[int32]bool{}
	m.VisitByRow(func(row int, v RowView) {
		for i := 0; i < v.Len(); i++ {
			d := v.Data(i)
			if seen[d[0]] {
				t.Fatalf("entry id %d seen twice from rows", d[0])
			}
			seen[d[0]] = true
			if d[2] != int32(row) {
				t.Fatalf("entry stamped row %d visited from row %d", d[2], row)
			}
			if d[1] != v.Col(i) {
				t.Fatalf("entry stamped col %d but Col(i) = %d", d[1], v.Col(i))
			}
		}
	})
	if len(seen) != m.NNZ() {
		t.Fatalf("row visit reached %d entries, want %d", len(seen), m.NNZ())
	}
}

func TestMutationVisibleAcrossViews(t *testing.T) {
	b := NewBuilder(2, 2, 1)
	b.AddEntry(1, 0)
	m := b.Freeze()
	m.RowOf(1).Data(0)[0] = 42
	if got := m.Column(0).Data(0)[0]; got != 42 {
		t.Fatalf("column view sees %d, want 42", got)
	}
}

func TestDuplicateCellEntries(t *testing.T) {
	b := NewBuilder(3, 3, 1)
	b.AddEntry(1, 1)
	b.AddEntry(1, 1)
	b.AddEntry(1, 1)
	m := b.Freeze()
	if m.Column(1).Len() != 3 || m.RowOf(1).Len() != 3 {
		t.Fatal("duplicate cell entries lost")
	}
}

func TestAddEntryOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewBuilder(2, 2, 1).AddEntry(2, 0)
}

func TestEmptyMatrix(t *testing.T) {
	m := NewBuilder(4, 4, 1).Freeze()
	if m.NNZ() != 0 {
		t.Fatal("empty matrix has entries")
	}
	m.VisitByRow(func(row int, v RowView) {
		if v.Len() != 0 {
			t.Fatal("entries in empty matrix")
		}
	})
}

// Property: freeze preserves the (row, col) multiset and column sorting
// for arbitrary random matrices.
func TestFreezeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		rows, cols := r.Intn(12)+1, r.Intn(12)+1
		nnz := r.Intn(60)
		m, ref := buildRandom(seed, rows, cols, nnz, 1)
		want := map[[2]int32]int{}
		for _, e := range ref {
			want[e]++
		}
		got := map[[2]int32]int{}
		ok := true
		m.VisitByColumn(func(col int, v ColView) {
			for i := 0; i < v.Len(); i++ {
				got[[2]int32{v.Row(i), int32(col)}]++
				if i > 0 && v.Row(i) < v.Row(i-1) {
					ok = false
				}
			}
		})
		return ok && reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// zipfWeights returns shifted-Zipf term frequencies. The shift emulates
// stop-word removal: the paper notes the most frequent ClueWeb12 word
// holds only 0.257% of tokens *after* stop words are removed, so the
// head must not dominate the total.
func zipfWeights(n int, seed uint64) []int {
	r := rng.New(seed)
	w := make([]int, n)
	for i := range w {
		w[i] = 1 + int(20000.0/float64(i+10)) + r.Intn(3)
	}
	return w
}

func TestImbalanceIndex(t *testing.T) {
	if got := ImbalanceIndex([]int64{10, 10, 10}); got != 0 {
		t.Fatalf("balanced index = %g", got)
	}
	if got := ImbalanceIndex([]int64{20, 10, 0}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("index = %g, want 1 (max 20 / mean 10 - 1)", got)
	}
	if got := ImbalanceIndex(nil); got != 0 {
		t.Fatalf("empty index = %g", got)
	}
}

func TestPartitionsCoverAllItems(t *testing.T) {
	w := zipfWeights(500, 4)
	r := rng.New(5)
	for name, pt := range map[string]*Partition{
		"greedy":  GreedyPartition(w, 8),
		"static":  StaticPartition(w, 8, r),
		"dynamic": DynamicPartition(w, 8),
	} {
		if len(pt.Assign) != len(w) {
			t.Fatalf("%s: wrong length", name)
		}
		for i, p := range pt.Assign {
			if p < 0 || int(p) >= pt.P {
				t.Fatalf("%s: item %d assigned to part %d", name, i, p)
			}
		}
		var total int64
		for _, l := range pt.Loads(w) {
			total += l
		}
		var want int64
		for _, x := range w {
			want += int64(x)
		}
		if total != want {
			t.Fatalf("%s: loads sum %d, want %d", name, total, want)
		}
	}
}

func TestGreedyBeatsBaselines(t *testing.T) {
	// The paper's Figure 4: on power-law weights the greedy strategy is
	// orders of magnitude more balanced than static/dynamic.
	w := zipfWeights(2000, 6)
	const p = 16
	r := rng.New(7)
	greedy := ImbalanceIndex(GreedyPartition(w, p).Loads(w))
	static := ImbalanceIndex(StaticPartition(w, p, r).Loads(w))
	dynamic := ImbalanceIndex(DynamicPartition(w, p).Loads(w))
	if greedy >= static {
		t.Errorf("greedy %g not better than static %g", greedy, static)
	}
	if greedy >= dynamic {
		t.Errorf("greedy %g not better than dynamic %g", greedy, dynamic)
	}
	if greedy > 0.01 {
		t.Errorf("greedy imbalance %g unexpectedly large", greedy)
	}
}

func TestStaticEqualItemCounts(t *testing.T) {
	w := zipfWeights(100, 8)
	pt := StaticPartition(w, 4, rng.New(9))
	counts := make([]int, 4)
	for _, p := range pt.Assign {
		counts[p]++
	}
	for _, c := range counts {
		if c != 25 {
			t.Fatalf("static part sizes %v, want 25 each", counts)
		}
	}
}

func TestDynamicContiguous(t *testing.T) {
	w := zipfWeights(200, 10)
	pt := DynamicPartition(w, 5)
	for i := 1; i < len(pt.Assign); i++ {
		if pt.Assign[i] < pt.Assign[i-1] {
			t.Fatal("dynamic partition not contiguous")
		}
	}
	// Every part must be used.
	used := map[int32]bool{}
	for _, p := range pt.Assign {
		used[p] = true
	}
	if len(used) != 5 {
		t.Fatalf("dynamic used %d parts, want 5", len(used))
	}
}

func TestGreedySinglePart(t *testing.T) {
	w := []int{5, 3, 1}
	pt := GreedyPartition(w, 1)
	if ImbalanceIndex(pt.Loads(w)) != 0 {
		t.Fatal("single part must be perfectly balanced")
	}
}

func BenchmarkFreeze(b *testing.B) {
	r := rng.New(1)
	const rows, cols, nnz = 2000, 2000, 200000
	entries := make([][2]int, nnz)
	for i := range entries {
		entries[i] = [2]int{r.Intn(rows), r.Intn(cols)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl := NewBuilder(rows, cols, 2)
		for _, e := range entries {
			bl.AddEntry(e[0], e[1])
		}
		bl.Freeze()
	}
}

func BenchmarkGreedyPartition(b *testing.B) {
	w := zipfWeights(100000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GreedyPartition(w, 64)
	}
}

func TestFreezeShuffledPreservesMultiset(t *testing.T) {
	r := rng.New(31)
	b := NewBuilder(10, 12, 1)
	want := map[[2]int32]int{}
	for i := 0; i < 120; i++ {
		row, col := r.Intn(10), r.Intn(12)
		b.AddEntry(row, col)
		want[[2]int32{int32(row), int32(col)}]++
	}
	m := b.FreezeShuffled(5)
	got := map[[2]int32]int{}
	m.VisitByColumn(func(col int, v ColView) {
		for i := 0; i < v.Len(); i++ {
			got[[2]int32{v.Row(i), int32(col)}]++
		}
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("shuffled freeze lost entries")
	}
	// Row and column views must still agree on entry payloads.
	id := int32(0)
	m.VisitByColumn(func(_ int, v ColView) {
		for i := 0; i < v.Len(); i++ {
			v.Data(i)[0] = id
			id++
		}
	})
	seen := map[int32]bool{}
	m.VisitByRow(func(_ int, v RowView) {
		for i := 0; i < v.Len(); i++ {
			seen[v.Data(i)[0]] = true
		}
	})
	if len(seen) != m.NNZ() {
		t.Fatalf("row views reach %d entries, want %d", len(seen), m.NNZ())
	}
}
