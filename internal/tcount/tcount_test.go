package tcount

import (
	"testing"
	"testing/quick"

	"warplda/internal/rng"
)

// exercise runs the same randomized workload against a Counter and a
// reference map, checking agreement.
func exercise(t *testing.T, c Counter, k int, seed uint64, ops int) {
	t.Helper()
	r := rng.New(seed)
	ref := make(map[int32]int32)
	for i := 0; i < ops; i++ {
		topic := int32(r.Intn(k))
		switch {
		case ref[topic] > 0 && r.Bernoulli(0.4):
			c.Decr(topic)
			ref[topic]--
		default:
			c.Incr(topic)
			ref[topic]++
		}
		if i%97 == 0 {
			probe := int32(r.Intn(k))
			if got, want := c.Get(probe), ref[probe]; got != want {
				t.Fatalf("op %d: Get(%d) = %d, want %d", i, probe, got, want)
			}
		}
	}
	// Full agreement at the end.
	nz := 0
	for topic, count := range ref {
		if count > 0 {
			nz++
		}
		if got := c.Get(topic); got != count {
			t.Fatalf("final Get(%d) = %d, want %d", topic, got, count)
		}
	}
	if c.Distinct() != nz {
		t.Fatalf("Distinct() = %d, want %d", c.Distinct(), nz)
	}
	seen := make(map[int32]int32)
	c.NonZero(func(topic, count int32) {
		if _, dup := seen[topic]; dup {
			t.Fatalf("NonZero visited topic %d twice", topic)
		}
		seen[topic] = count
	})
	if len(seen) != nz {
		t.Fatalf("NonZero visited %d topics, want %d", len(seen), nz)
	}
	for topic, count := range seen {
		if ref[topic] != count {
			t.Fatalf("NonZero(%d) = %d, want %d", topic, count, ref[topic])
		}
	}
	// Reset empties everything.
	c.Reset()
	if c.Distinct() != 0 {
		t.Fatalf("Distinct after Reset = %d", c.Distinct())
	}
	c.NonZero(func(topic, count int32) {
		t.Fatalf("NonZero after Reset visited %d", topic)
	})
	for i := 0; i < 10; i++ {
		if c.Get(int32(r.Intn(k))) != 0 {
			t.Fatal("Get nonzero after Reset")
		}
	}
}

func TestDenseAgainstMap(t *testing.T)     { exercise(t, NewDense(50), 50, 1, 5000) }
func TestHashAgainstMap(t *testing.T)      { exercise(t, NewHash(8), 50, 2, 5000) }
func TestHashLargeKeySpace(t *testing.T)   { exercise(t, NewHash(4), 1_000_000, 3, 3000) }
func TestHashGrowthUnderLoad(t *testing.T) { exercise(t, NewHash(1), 10000, 4, 8000) }
func TestDenseReuseAfterReset(t *testing.T) {
	c := NewDense(10)
	exercise(t, c, 10, 5, 500)
	exercise(t, c, 10, 6, 500)
}
func TestHashReuseAfterReset(t *testing.T) {
	c := NewHash(4)
	exercise(t, c, 100, 7, 500)
	exercise(t, c, 100, 8, 500)
}

func TestDenseDecrBelowZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewDense(3).Decr(1)
}

func TestHashDecrBelowZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHash(4).Decr(1)
}

func TestHashDecrToZeroThenIncr(t *testing.T) {
	h := NewHash(4)
	h.Incr(7)
	h.Decr(7)
	if h.Get(7) != 0 || h.Distinct() != 0 {
		t.Fatal("count not zero after Incr/Decr")
	}
	h.Incr(7)
	if h.Get(7) != 1 || h.Distinct() != 1 {
		t.Fatal("re-Incr after zero failed")
	}
}

func TestCapacityFor(t *testing.T) {
	cases := []struct{ k, l, want int }{
		{1000000, 3, 8},     // min pow2 > 6
		{1000000, 100, 256}, // min pow2 > 200
		{16, 1000, 32},      // min pow2 > 16
		{1024, 512, 2048},   // min(K,2L)=1024 → 2048
		{5, 5, 8},           // min pow2 > 5
	}
	for _, c := range cases {
		if got := CapacityFor(c.k, c.l); got != c.want {
			t.Errorf("CapacityFor(%d,%d) = %d, want %d", c.k, c.l, got, c.want)
		}
	}
}

func TestForRowSelection(t *testing.T) {
	if _, ok := ForRow(100, 5, 1024).(*Dense); !ok {
		t.Error("small K should pick Dense")
	}
	if _, ok := ForRow(1_000_000, 10, 1024).(*Hash); !ok {
		t.Error("large K, short row should pick Hash")
	}
	if _, ok := ForRow(2000, 5000, 1024).(*Dense); !ok {
		t.Error("row longer than K/2 should pick Dense")
	}
}

// Property: for any op sequence, sum of counts equals incrs-decrs.
func TestHashSumProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		h := NewHash(4)
		balance := 0
		ref := map[int32]int32{}
		for i := 0; i < 400; i++ {
			k := int32(r.Intn(64))
			if ref[k] > 0 && r.Bernoulli(0.3) {
				h.Decr(k)
				ref[k]--
				balance--
			} else {
				h.Incr(k)
				ref[k]++
				balance++
			}
		}
		var sum int32
		h.NonZero(func(_, c int32) { sum += c })
		return int(sum) == balance
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHashIncr(b *testing.B) {
	h := NewHash(64)
	r := rng.New(1)
	keys := make([]int32, 1024)
	for i := range keys {
		keys[i] = int32(r.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Incr(keys[i&1023])
	}
}

func BenchmarkDenseIncr(b *testing.B) {
	d := NewDense(1 << 20)
	r := rng.New(1)
	keys := make([]int32, 1024)
	for i := range keys {
		keys[i] = int32(r.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Incr(keys[i&1023])
	}
}

func BenchmarkHashReset(b *testing.B) {
	h := NewHash(256)
	for i := 0; i < 256; i++ {
		h.Incr(int32(i * 37))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Reset()
	}
}

func TestDenseNonZeroAfterBounce(t *testing.T) {
	d := NewDense(10)
	d.Incr(3)
	d.Decr(3)
	d.Incr(3) // touched now holds 3 twice
	visits := 0
	d.NonZero(func(k, c int32) {
		if k != 3 || c != 1 {
			t.Fatalf("NonZero(%d,%d)", k, c)
		}
		visits++
	})
	if visits != 1 {
		t.Fatalf("bounced topic visited %d times", visits)
	}
	if d.Get(3) != 1 {
		t.Fatal("counts not restored after NonZero")
	}
}

func TestHashResetFor(t *testing.T) {
	h := NewHash(4)
	for i := 0; i < 100; i++ {
		h.Incr(int32(i))
	}
	grownCap := h.Capacity()
	h.ResetFor(1000000, 3) // min pow2 > 6 = 8
	if h.Capacity() != 8 {
		t.Fatalf("capacity after ResetFor = %d, want 8", h.Capacity())
	}
	if h.Distinct() != 0 || h.Get(5) != 0 {
		t.Fatal("ResetFor did not clear")
	}
	h.Incr(42)
	if h.Get(42) != 1 {
		t.Fatal("table unusable after ResetFor")
	}
	h.ResetFor(1000000, grownCap) // grow back
	if h.Capacity() <= 8 {
		t.Fatal("ResetFor did not grow")
	}
	exercise(t, h, 500, 21, 2000)
}
