// Package tcount provides topic-count vectors: the sparse per-document
// row cd and per-word row cw that every LDA sampler reads and writes on
// its hot path.
//
// Section 5.4 of the WarpLDA paper prescribes an open-addressing hash
// table with linear probing and an and-mask hash, sized to the minimum
// power of two ≥ min(K, 2L) — much smaller than a dense K-vector when the
// row is sparse, so it both clears faster and keeps the randomly accessed
// working set inside the cache. This package implements that table plus a
// dense variant, behind one interface so samplers can pick per row.
package tcount

// Counter is a non-negative integer vector indexed by topic, supporting
// the operations samplers need: point reads/updates and iteration over
// the non-zero entries.
type Counter interface {
	// Get returns the count of topic k.
	Get(k int32) int32
	// Incr adds one to topic k.
	Incr(k int32)
	// Decr subtracts one from topic k. Decrementing a zero count panics
	// in the dense implementation and is a programming error in both.
	Decr(k int32)
	// NonZero calls fn for every topic with a positive count. Order is
	// unspecified. fn must not mutate the counter.
	NonZero(fn func(k, count int32))
	// Distinct returns the number of topics with positive count (Kd/Kw in
	// the paper's notation).
	Distinct() int
	// Reset restores all counts to zero.
	Reset()
}

// Dense is a Counter backed by a K-sized array with a touched list, so
// Reset and NonZero cost O(topics touched since the last Reset) rather
// than O(K). Best when K is small or the row is nearly full.
type Dense struct {
	counts  []int32
	touched []int32 // topics that left zero at least once; may contain duplicates
	nonzero int
}

// NewDense returns a dense counter over topics 0..k-1.
func NewDense(k int) *Dense {
	return &Dense{counts: make([]int32, k)}
}

// Get implements Counter.
func (d *Dense) Get(k int32) int32 { return d.counts[k] }

// Incr implements Counter.
func (d *Dense) Incr(k int32) {
	if d.counts[k] == 0 {
		d.nonzero++
		d.touched = append(d.touched, k)
	}
	d.counts[k]++
}

// Decr implements Counter.
func (d *Dense) Decr(k int32) {
	if d.counts[k] == 0 {
		panic("tcount: Decr below zero")
	}
	d.counts[k]--
	if d.counts[k] == 0 {
		d.nonzero--
	}
}

// NonZero implements Counter. Duplicate touched entries (a topic that
// bounced through zero) are visited once: visited counts are negated
// during the sweep and restored afterwards.
func (d *Dense) NonZero(fn func(k, count int32)) {
	for _, k := range d.touched {
		if c := d.counts[k]; c > 0 {
			fn(k, c)
			d.counts[k] = -c
		}
	}
	for _, k := range d.touched {
		if c := d.counts[k]; c < 0 {
			d.counts[k] = -c
		}
	}
}

// Distinct implements Counter.
func (d *Dense) Distinct() int { return d.nonzero }

// Reset implements Counter in O(touched).
func (d *Dense) Reset() {
	for _, k := range d.touched {
		d.counts[k] = 0
	}
	d.touched = d.touched[:0]
	d.nonzero = 0
}

// K returns the dimension of the counter.
func (d *Dense) K() int { return len(d.counts) }

// Raw exposes the backing array for O(K) scans (e.g. building a dense
// alias table). Callers must not modify it.
func (d *Dense) Raw() []int32 { return d.counts }

// Hash is a Counter backed by an open-addressing hash table with linear
// probing. Keys are topics (int32 ≥ 0); the hash is key & mask, exactly
// the "simple and function" from the paper. Empty slots hold key -1.
//
// The table never deletes slots on Decr (tombstone-free): a slot whose
// count reaches zero keeps its key so probe chains stay intact; Reset
// clears everything. This matches the usage pattern — counts are built
// up for one row, consumed, and reset.
type Hash struct {
	keys    []int32
	vals    []int32
	mask    int32
	used    int // occupied slots (including count==0 ones)
	nonzero int
}

// NewHash returns a hash counter with capacity for roughly expected
// distinct topics. Capacity is the minimum power of two ≥ max(8,
// 2*expected); the table grows automatically if the estimate is low.
func NewHash(expected int) *Hash {
	capPow2 := 8
	for capPow2 < 2*expected {
		capPow2 <<= 1
	}
	h := &Hash{
		keys: make([]int32, capPow2),
		vals: make([]int32, capPow2),
		mask: int32(capPow2 - 1),
	}
	for i := range h.keys {
		h.keys[i] = -1
	}
	return h
}

// CapacityFor returns the paper's table capacity rule: the minimum power
// of two larger than min(k, 2l).
func CapacityFor(k, l int) int {
	n := k
	if 2*l < n {
		n = 2 * l
	}
	capPow2 := 8
	for capPow2 <= n {
		capPow2 <<= 1
	}
	return capPow2
}

func (h *Hash) slot(k int32) int32 {
	i := k & h.mask
	for {
		kk := h.keys[i]
		if kk == k || kk == -1 {
			return i
		}
		i = (i + 1) & h.mask
	}
}

// Get implements Counter.
func (h *Hash) Get(k int32) int32 {
	i := h.slot(k)
	if h.keys[i] == -1 {
		return 0
	}
	return h.vals[i]
}

// Incr implements Counter.
func (h *Hash) Incr(k int32) {
	i := h.slot(k)
	if h.keys[i] == -1 {
		if 4*(h.used+1) > 3*len(h.keys) { // load factor 0.75
			h.grow()
			i = h.slot(k)
		}
		h.keys[i] = k
		h.vals[i] = 0
		h.used++
	}
	if h.vals[i] == 0 {
		h.nonzero++
	}
	h.vals[i]++
}

// Decr implements Counter.
func (h *Hash) Decr(k int32) {
	i := h.slot(k)
	if h.keys[i] == -1 || h.vals[i] == 0 {
		panic("tcount: Decr below zero")
	}
	h.vals[i]--
	if h.vals[i] == 0 {
		h.nonzero--
	}
}

// NonZero implements Counter.
func (h *Hash) NonZero(fn func(k, count int32)) {
	for i, k := range h.keys {
		if k != -1 && h.vals[i] > 0 {
			fn(k, h.vals[i])
		}
	}
}

// Distinct implements Counter.
func (h *Hash) Distinct() int { return h.nonzero }

// Reset implements Counter. O(capacity), which the capacity rule keeps at
// O(min(K, 2L)).
func (h *Hash) Reset() {
	for i := range h.keys {
		h.keys[i] = -1
	}
	clear(h.vals)
	h.used = 0
	h.nonzero = 0
}

func (h *Hash) grow() {
	oldKeys, oldVals := h.keys, h.vals
	n := len(oldKeys) * 2
	h.keys = make([]int32, n)
	h.vals = make([]int32, n)
	h.mask = int32(n - 1)
	h.used = 0
	h.nonzero = 0
	for i := range h.keys {
		h.keys[i] = -1
	}
	for i, k := range oldKeys {
		if k != -1 && oldVals[i] > 0 {
			j := h.slot(k)
			h.keys[j] = k
			h.vals[j] = oldVals[i]
			h.used++
			h.nonzero++
		}
	}
}

// Capacity returns the current slot count (power of two).
func (h *Hash) Capacity() int { return len(h.keys) }

// ResetFor clears the table and sizes it per the paper's rule for a row
// of length l over k topics (minimum power of two > min(k, 2l)), reusing
// the backing arrays when they are large enough. Clearing cost is
// O(resulting capacity), which is the point: a short row costs a short
// clear.
func (h *Hash) ResetFor(k, l int) {
	want := CapacityFor(k, l)
	if want > cap(h.keys) {
		h.keys = make([]int32, want)
		h.vals = make([]int32, want)
	} else {
		h.keys = h.keys[:want]
		h.vals = h.vals[:want]
	}
	h.mask = int32(want - 1)
	for i := range h.keys {
		h.keys[i] = -1
	}
	clear(h.vals)
	h.used = 0
	h.nonzero = 0
}

// ForRow returns a Counter suited to a row of length l over k topics:
// dense when k is small enough that a dense array is cheaper to clear
// than a hash table, hash otherwise. threshold is the dense cutoff in
// topics; 1024 is a reasonable default.
func ForRow(k, l, threshold int) Counter {
	if k <= threshold || 2*l >= k {
		return NewDense(k)
	}
	return NewHash(min(k, 2*l) / 2)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
