package alias

import (
	"math"
	"testing"
	"testing/quick"

	"warplda/internal/rng"
)

// chiSquareOK draws n samples and checks empirical frequencies against the
// normalized weights with a generous z-test per bucket.
func chiSquareOK(t *testing.T, tab *Table, weights []float64, n int) {
	t.Helper()
	r := rng.New(99)
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		v := tab.Draw(r)
		if v < 0 || v >= len(weights) {
			t.Fatalf("draw %d out of range", v)
		}
		counts[v]++
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		p := w / total
		want := p * float64(n)
		sd := math.Sqrt(float64(n) * p * (1 - p))
		if math.Abs(float64(counts[i])-want) > 6*sd+3 {
			t.Errorf("outcome %d: count %d, want ~%.1f (sd %.1f)", i, counts[i], want, sd)
		}
	}
}

func TestUniform(t *testing.T) {
	w := []float64{1, 1, 1, 1}
	chiSquareOK(t, New(w), w, 40000)
}

func TestSkewed(t *testing.T) {
	w := []float64{0.1, 10, 1, 5, 0.01, 3}
	chiSquareOK(t, New(w), w, 60000)
}

func TestSingleOutcome(t *testing.T) {
	tab := New([]float64{3.5})
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		if tab.Draw(r) != 0 {
			t.Fatal("single-outcome table drew nonzero")
		}
	}
}

func TestZeroWeightNeverDrawn(t *testing.T) {
	w := []float64{0, 1, 0, 2, 0}
	tab := New(w)
	r := rng.New(2)
	for i := 0; i < 50000; i++ {
		v := tab.Draw(r)
		if v == 0 || v == 2 || v == 4 {
			t.Fatalf("drew zero-weight outcome %d", v)
		}
	}
}

func TestAllZeroFallsBackToUniform(t *testing.T) {
	w := []float64{0, 0, 0}
	tab := New(w)
	r := rng.New(3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		seen[tab.Draw(r)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("uniform fallback drew %d distinct outcomes, want 3", len(seen))
	}
}

func TestNegativeTreatedAsZero(t *testing.T) {
	w := []float64{-5, 1}
	tab := New(w)
	r := rng.New(4)
	for i := 0; i < 10000; i++ {
		if tab.Draw(r) == 0 {
			t.Fatal("drew negative-weight outcome")
		}
	}
}

func TestRebuildReuses(t *testing.T) {
	tab := New([]float64{1, 2, 3})
	tab.Build([]float64{5, 1})
	if tab.K() != 2 {
		t.Fatalf("K after rebuild = %d, want 2", tab.K())
	}
	chiSquareOK(t, tab, []float64{5, 1}, 30000)
}

func TestBuildCounts(t *testing.T) {
	counts := []int32{0, 3, 1}
	tab := &Table{}
	tab.BuildCounts(counts, 0.5)
	w := []float64{0.5, 3.5, 1.5}
	chiSquareOK(t, tab, w, 60000)
}

func TestBuildEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Build(nil) did not panic")
		}
	}()
	New(nil)
}

func TestSparseTable(t *testing.T) {
	var s SparseTable
	s.Build([]int32{7, 42, 3}, []float64{1, 2, 1})
	r := rng.New(5)
	counts := map[int32]int{}
	for i := 0; i < 40000; i++ {
		counts[s.Draw(r)]++
	}
	if len(counts) != 3 {
		t.Fatalf("drew %d distinct outcomes, want 3", len(counts))
	}
	if counts[42] < counts[7] || counts[42] < counts[3] {
		t.Fatalf("outcome 42 (weight 2) drawn less than weight-1 outcomes: %v", counts)
	}
}

func TestSparseTableMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Build did not panic")
		}
	}()
	var s SparseTable
	s.Build([]int32{1}, []float64{1, 2})
}

// Property: the table always produces indices within range and, for a
// distribution with a single heavy atom (>90% of mass), that atom is the
// modal outcome.
func TestHeavyAtomProperty(t *testing.T) {
	f := func(seed uint64, kRaw uint8, heavyRaw uint8) bool {
		k := int(kRaw%20) + 2
		heavy := int(heavyRaw) % k
		w := make([]float64, k)
		for i := range w {
			w[i] = 0.01
		}
		w[heavy] = 10
		tab := New(w)
		r := rng.New(seed)
		counts := make([]int, k)
		for i := 0; i < 2000; i++ {
			v := tab.Draw(r)
			if v < 0 || v >= k {
				return false
			}
			counts[v]++
		}
		mode := 0
		for i, c := range counts {
			if c > counts[mode] {
				mode = i
			}
		}
		return mode == heavy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: total probability is conserved — every bin threshold is in
// [0,1] and refers to valid outcomes after Build on random weights.
func TestBuildInvariants(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw%64) + 1
		r := rng.New(seed)
		w := make([]float64, k)
		for i := range w {
			w[i] = r.Float64() * 10
		}
		tab := New(w)
		for i := 0; i < k; i++ {
			if tab.prob[i] < 0 || tab.prob[i] > 1+1e-9 {
				return false
			}
			if tab.first[i] < 0 || int(tab.first[i]) >= k {
				return false
			}
			if tab.second[i] < 0 || int(tab.second[i]) >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild1024(b *testing.B) {
	r := rng.New(1)
	w := make([]float64, 1024)
	for i := range w {
		w[i] = r.Float64()
	}
	tab := &Table{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Build(w)
	}
}

func BenchmarkDraw(b *testing.B) {
	r := rng.New(1)
	w := make([]float64, 1024)
	for i := range w {
		w[i] = r.Float64()
	}
	tab := New(w)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += tab.Draw(r)
	}
	_ = sink
}
