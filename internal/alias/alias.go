// Package alias implements Walker's alias method (Walker 1977) for O(1)
// sampling from a discrete distribution after O(K) construction.
//
// WarpLDA and the LightLDA/AliasLDA baselines use alias tables to draw
// from the word proposal q(z=k) ∝ Cwk (+ β). The table is built once per
// word visit and then queried M times per token, so both construction and
// query are on the hot path. The implementation uses the two-stack
// construction and stores the outcome pair per bin in a single struct to
// keep each draw to one cache line.
package alias

import "warplda/internal/rng"

// Table is an alias table over outcomes 0..K-1. The zero value is an empty
// table; use Build or New to populate it. Tables may be reused across
// Build calls to avoid allocation.
type Table struct {
	// prob[i] is the threshold in [0,1]: with probability prob[i] bin i
	// yields outcome first[i], otherwise outcome second[i].
	prob   []float64
	first  []int32
	second []int32
	// scratch stacks reused across builds.
	small, large []int32
}

// New builds a table for the given unnormalized weights.
func New(weights []float64) *Table {
	t := &Table{}
	t.Build(weights)
	return t
}

// K returns the number of outcomes in the table.
func (t *Table) K() int { return len(t.prob) }

// Build (re)constructs the table from unnormalized weights. Negative
// weights are treated as zero. If all weights are zero the table yields a
// uniform distribution. Build is O(len(weights)) and reuses the table's
// backing storage.
func (t *Table) Build(weights []float64) {
	k := len(weights)
	if k == 0 {
		panic("alias: Build with empty weights")
	}
	t.prob = grow(t.prob, k)
	t.first = growI(t.first, k)
	t.second = growI(t.second, k)
	t.small = t.small[:0]
	t.large = t.large[:0]

	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		// Degenerate: uniform.
		for i := 0; i < k; i++ {
			t.prob[i] = 1
			t.first[i] = int32(i)
			t.second[i] = int32(i)
		}
		return
	}

	// Scale weights so the average bin holds mass exactly 1.
	scale := float64(k) / total
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		p := w * scale
		t.prob[i] = p
		if p < 1 {
			t.small = append(t.small, int32(i))
		} else {
			t.large = append(t.large, int32(i))
		}
	}

	for len(t.small) > 0 && len(t.large) > 0 {
		s := t.small[len(t.small)-1]
		t.small = t.small[:len(t.small)-1]
		l := t.large[len(t.large)-1]

		t.first[s] = s
		t.second[s] = l
		// Bin s is settled; l donates 1-prob[s] mass to it.
		t.prob[l] -= 1 - t.prob[s]
		if t.prob[l] < 1 {
			t.large = t.large[:len(t.large)-1]
			t.small = append(t.small, l)
		}
	}
	// Leftovers are numerically == 1.
	for _, i := range t.large {
		t.prob[i] = 1
		t.first[i] = i
		t.second[i] = i
	}
	for _, i := range t.small {
		t.prob[i] = 1
		t.first[i] = i
		t.second[i] = i
	}
	t.small = t.small[:0]
	t.large = t.large[:0]
}

// BuildCounts is Build for integer weights plus a uniform smoothing term
// added to every outcome. It avoids materializing a float slice on the
// caller side: weight(i) = float64(counts[i]) + smooth.
func (t *Table) BuildCounts(counts []int32, smooth float64) {
	k := len(counts)
	if k == 0 {
		panic("alias: BuildCounts with empty counts")
	}
	// Reuse prob as the weight buffer; Build reads weights before writing
	// prob entries it hasn't consumed yet, so pass a distinct slice.
	w := make([]float64, k)
	for i, c := range counts {
		w[i] = float64(c) + smooth
	}
	t.Build(w)
}

// Draw samples an outcome in O(1) using two uniform draws from r.
func (t *Table) Draw(r *rng.RNG) int {
	i := r.Intn(len(t.prob))
	if r.Float64() < t.prob[i] {
		return int(t.first[i])
	}
	return int(t.second[i])
}

func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// SparseTable is an alias table over an explicit outcome set: it samples
// index i with probability ∝ weights[i] and returns outcomes[i]. WarpLDA
// builds these over the non-zero entries of a sparse count row, so K here
// is the number of distinct topics in the row, not the full topic count.
type SparseTable struct {
	inner    Table
	outcomes []int32
}

// Build constructs the sparse table. outcomes and weights must have equal,
// non-zero length. The outcomes slice is copied.
func (s *SparseTable) Build(outcomes []int32, weights []float64) {
	if len(outcomes) != len(weights) {
		panic("alias: outcomes/weights length mismatch")
	}
	s.inner.Build(weights)
	s.outcomes = append(s.outcomes[:0], outcomes...)
}

// K returns the number of outcomes.
func (s *SparseTable) K() int { return len(s.outcomes) }

// Draw samples an outcome in O(1).
func (s *SparseTable) Draw(r *rng.RNG) int32 {
	return s.outcomes[s.inner.Draw(r)]
}
