package query

import (
	"fmt"
	"strconv"
)

// Iter is a lazy pull iterator over rows of type T. Rows are produced
// one at a time, only when pulled: building an Iter does no work, and
// abandoning one part-way (a row limit, a response byte budget, a
// closed connection) leaves the remaining rows uncomputed. Composition
// is by wrapping — Skip and Limit return new iterators over the same
// underlying pull function — so a paginated query is
// Limit(Skip(source, cursor), limit) and costs cursor+limit pulls, not
// a materialized result set.
type Iter[T any] struct {
	next func() (T, bool, error)
	err  error
	done bool
}

// NewIter wraps a pull function: next returns (row, true, nil) while
// rows remain, (zero, false, nil) at the end, or an error, which
// terminates the iterator. next is never called again after it returns
// false or an error.
func NewIter[T any](next func() (T, bool, error)) *Iter[T] {
	return &Iter[T]{next: next}
}

// Next pulls the next row. ok is false at the end of the stream or on
// error; check Err after the loop.
func (it *Iter[T]) Next() (row T, ok bool) {
	if it.done {
		return row, false
	}
	row, ok, err := it.next()
	if err != nil {
		it.err = err
		it.done = true
		return row, false
	}
	if !ok {
		it.done = true
	}
	return row, ok
}

// Err returns the error that terminated the iterator, if any.
func (it *Iter[T]) Err() error { return it.err }

// Limit caps it at n rows. n <= 0 yields an empty iterator.
func Limit[T any](it *Iter[T], n int) *Iter[T] {
	emitted := 0
	out := NewIter(func() (T, bool, error) {
		var zero T
		if emitted >= n {
			return zero, false, nil
		}
		row, ok := it.Next()
		if !ok {
			return zero, false, it.Err()
		}
		emitted++
		return row, true, nil
	})
	return out
}

// Skip discards the first n rows of it — the cursor side of
// pagination. The discarded rows are pulled (and therefore computed)
// lazily, on the first pull of the returned iterator, not at wrap
// time.
func Skip[T any](it *Iter[T], n int) *Iter[T] {
	skipped := false
	return NewIter(func() (T, bool, error) {
		var zero T
		if !skipped {
			skipped = true
			for i := 0; i < n; i++ {
				if _, ok := it.Next(); !ok {
					return zero, false, it.Err()
				}
			}
		}
		row, ok := it.Next()
		if !ok {
			return zero, false, it.Err()
		}
		return row, true, nil
	})
}

// Collect drains it into a slice — tests and small internal consumers
// only; the serve path streams instead (see StreamArray).
func Collect[T any](it *Iter[T]) ([]T, error) {
	var out []T
	for {
		row, ok := it.Next()
		if !ok {
			return out, it.Err()
		}
		out = append(out, row)
	}
}

// ParseCursor decodes a pagination cursor as produced in a streamed
// response's next_cursor field: the number of rows already delivered.
// An empty cursor is offset 0. The decimal form is part of the /v1 API
// contract (docs/API.md); clients should still treat cursors as opaque
// tokens and echo them back unchanged.
func ParseCursor(s string) (int, error) {
	if s == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("query: bad cursor %q", s)
	}
	return n, nil
}

// Cursor encodes the pagination offset after delivering rows.
func Cursor(offset int) string { return strconv.Itoa(offset) }
