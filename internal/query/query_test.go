package query

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"testing"

	"warplda/internal/infer"
)

// testModel builds a deterministic synthetic model: V words, K topics,
// word w's count in topic k is a fixed function of (w, k) so rankings
// are verifiable by brute force.
func testModel(t testing.TB, v, k int, count func(w, k int) int32) Model {
	t.Helper()
	cw := make([]int32, v*k)
	ck := make([]int64, k)
	for w := 0; w < v; w++ {
		for j := 0; j < k; j++ {
			c := count(w, j)
			cw[w*k+j] = c
			ck[j] += int64(c)
		}
	}
	eng, err := infer.NewEngine(infer.Params{V: v, K: k, Alpha: 0.1, Beta: 0.01, Cw: cw, Ck: ck}, infer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vocab := make([]string, v)
	for w := range vocab {
		vocab[w] = fmt.Sprintf("word%03d", w)
	}
	return Model{Engine: eng, Vocab: vocab}
}

// skewed gives each topic a distinct descending ranking: in topic k,
// word (w+k)%V has count V-w ... a rotation, so brute force is easy.
func skewed(v int) func(w, k int) int32 {
	return func(w, k int) int32 {
		return int32((w+k)%v + 1)
	}
}

func TestTopWordsMatchesBruteForce(t *testing.T) {
	const V, K = 50, 4
	m := testModel(t, V, K, skewed(V))
	for topic := 0; topic < K; topic++ {
		it, err := TopWords(m, topic, 10)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := Collect(it)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force: all words, sorted count desc / id asc.
		type wc struct {
			w int32
			c int32
		}
		var all []wc
		for w := 0; w < V; w++ {
			if c := m.Engine.Count(w, topic); c > 0 {
				all = append(all, wc{int32(w), c})
			}
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].c != all[j].c {
				return all[i].c > all[j].c
			}
			return all[i].w < all[j].w
		})
		if len(rows) != 10 {
			t.Fatalf("topic %d: got %d rows", topic, len(rows))
		}
		for i, row := range rows {
			if row.ID != all[i].w || row.Count != all[i].c {
				t.Fatalf("topic %d rank %d: got (%d,%d), want (%d,%d)",
					topic, i, row.ID, row.Count, all[i].w, all[i].c)
			}
			if row.Word != fmt.Sprintf("word%03d", row.ID) {
				t.Fatalf("row %d word = %q", i, row.Word)
			}
			if row.Phi <= 0 || row.Phi >= 1 {
				t.Fatalf("row %d phi = %g", i, row.Phi)
			}
		}
	}
}

func TestTopWordsValidation(t *testing.T) {
	m := testModel(t, 10, 2, skewed(10))
	if _, err := TopWords(m, 2, 5); err == nil {
		t.Fatal("topic out of range accepted")
	}
	if _, err := TopWords(m, -1, 5); err == nil {
		t.Fatal("negative topic accepted")
	}
	if _, err := TopWords(m, 0, MaxSelectionDepth+1); err == nil {
		t.Fatal("over-cap depth accepted")
	}
	it, err := TopWords(m, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rows, _ := Collect(it); len(rows) != 0 {
		t.Fatalf("depth 0 returned %d rows", len(rows))
	}
}

func TestTopWordsPaginationIsConsistent(t *testing.T) {
	const V = 40
	m := testModel(t, V, 2, skewed(V))
	full, err := TopWords(m, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Collect(full)
	if err != nil {
		t.Fatal(err)
	}
	// Page through with limit 7 and splice: must equal the single deep query.
	var got []WordRow
	for cursor := 0; cursor < 30; cursor += 7 {
		limit := 7
		if cursor+limit > 30 {
			limit = 30 - cursor
		}
		it, err := TopWords(m, 1, cursor+limit)
		if err != nil {
			t.Fatal(err)
		}
		page, err := Collect(Limit(Skip(it, cursor), limit))
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, page...)
	}
	if len(got) != len(want) {
		t.Fatalf("spliced %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: paged %+v != deep %+v", i, got[i], want[i])
		}
	}
}

func TestVocabSlice(t *testing.T) {
	m := testModel(t, 25, 3, skewed(25))
	rows, err := Collect(VocabSlice(m, "word01"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 { // word010..word019
		t.Fatalf("got %d rows: %+v", len(rows), rows)
	}
	for i, row := range rows {
		if row.ID != int32(10+i) {
			t.Fatalf("row %d id = %d", i, row.ID)
		}
		var want int64
		for k := 0; k < 3; k++ {
			want += int64(m.Engine.Count(int(row.ID), k))
		}
		if row.Tokens != want {
			t.Fatalf("row %d tokens = %d, want %d", i, row.Tokens, want)
		}
	}
	// No match → empty, no error.
	rows, err = Collect(VocabSlice(m, "zzz"))
	if err != nil || len(rows) != 0 {
		t.Fatalf("rows=%v err=%v", rows, err)
	}
}

func TestVocabSliceNilVocabUsesIDs(t *testing.T) {
	m := testModel(t, 12, 2, skewed(12))
	m.Vocab = nil
	rows, err := Collect(VocabSlice(m, "1"))
	if err != nil {
		t.Fatal(err)
	}
	// ids rendered as decimals: 1, 10, 11 start with "1".
	if len(rows) != 3 || rows[0].Word != "1" || rows[1].Word != "10" || rows[2].Word != "11" {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestSimilarRanksSelfFirst(t *testing.T) {
	const V, K = 30, 3
	// Three well-separated topics: words [0,10) → topic 0, etc.
	m := testModel(t, V, K, func(w, k int) int32 {
		if w/10 == k {
			return 100
		}
		return 0
	})
	mkdoc := func(topic int) []int32 {
		doc := make([]int32, 16)
		for i := range doc {
			doc[i] = int32(topic*10 + i%10)
		}
		return doc
	}
	query := mkdoc(1)
	docs := [][]int32{mkdoc(0), mkdoc(1), mkdoc(2)}
	it, err := Similar(m, query, docs, 8, 42, 3)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Doc != 1 {
		t.Fatalf("best match doc = %d (rows %+v), want the same-topic doc 1", rows[0].Doc, rows)
	}
	if rows[0].Score < rows[1].Score || rows[1].Score < rows[2].Score {
		t.Fatalf("scores not descending: %+v", rows)
	}
	// Determinism: same request twice → identical rows.
	it2, _ := Similar(m, query, docs, 8, 42, 3)
	rows2, _ := Collect(it2)
	for i := range rows {
		if rows[i] != rows2[i] {
			t.Fatalf("row %d differs across identical requests: %+v vs %+v", i, rows[i], rows2[i])
		}
	}
}

func TestTopDocsRanksByTopicWeight(t *testing.T) {
	const V, K = 30, 3
	m := testModel(t, V, K, func(w, k int) int32 {
		if w/10 == k {
			return 100
		}
		return 0
	})
	pure := func(topic, n int) []int32 {
		doc := make([]int32, n)
		for i := range doc {
			doc[i] = int32(topic*10 + i%10)
		}
		return doc
	}
	// Doc 0 is pure topic 2; doc 1 is half topic 2; doc 2 has none.
	docs := [][]int32{pure(2, 12), append(pure(2, 6), pure(0, 6)...), pure(0, 12)}
	it, err := TopDocs(m, docs, 2, 8, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].Doc != 0 || rows[1].Doc != 1 || rows[2].Doc != 2 {
		t.Fatalf("rows = %+v; want docs ordered 0,1,2", rows)
	}
	if rows[0].Weight < 0.9 || rows[2].Weight > 0.2 {
		t.Fatalf("weights implausible: %+v", rows)
	}
	// Bad doc id surfaces as an iterator error on pull, not a panic.
	bad, err := TopDocs(m, [][]int32{{int32(V)}}, 0, 4, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(bad); err == nil {
		t.Fatal("out-of-range token id did not error")
	}
}

func TestDriftIdenticalModelsIsZero(t *testing.T) {
	m := testModel(t, 40, 5, skewed(40))
	it, err := Drift(m, m, 10)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want one per topic", len(rows))
	}
	for _, row := range rows {
		if row.L1 != 0 {
			t.Fatalf("topic %d: L1 = %g on identical models", row.Topic, row.L1)
		}
		if row.Overlap != 1 {
			t.Fatalf("topic %d: overlap = %g on identical models", row.Topic, row.Overlap)
		}
		if len(row.TopA) != 10 || len(row.TopB) != 10 {
			t.Fatalf("topic %d: top sets %d/%d words", row.Topic, len(row.TopA), len(row.TopB))
		}
	}
}

func TestDriftDetectsShiftedTopic(t *testing.T) {
	const V, K = 30, 2
	a := testModel(t, V, K, func(w, k int) int32 {
		if w/15 == k {
			return 50
		}
		return 0
	})
	// b swaps the topics' word blocks.
	b := testModel(t, V, K, func(w, k int) int32 {
		if w/15 == 1-k {
			return 50
		}
		return 0
	})
	it, err := Drift(a, b, 5)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.Overlap != 0 {
			t.Fatalf("topic %d overlap = %g on disjoint top sets", row.Topic, row.Overlap)
		}
		if row.L1 < 1 {
			t.Fatalf("topic %d L1 = %g, want large on swapped columns", row.Topic, row.L1)
		}
	}
	// Shape mismatch is rejected up front.
	c := testModel(t, V, K+1, skewed(V))
	if _, err := Drift(a, c, 5); err == nil {
		t.Fatal("K mismatch accepted")
	}
}

func TestStreamArrayRowBudget(t *testing.T) {
	pulls := 0
	var buf bytes.Buffer
	st, err := StreamArray(&buf, counting(100, &pulls), Budget{MaxRows: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != 5 || !st.Truncated {
		t.Fatalf("stats = %+v", st)
	}
	var rows []int
	if err := json.Unmarshal(buf.Bytes(), &rows); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if len(rows) != 5 || rows[4] != 4 {
		t.Fatalf("rows = %v", rows)
	}
	// 5 delivered rows + 1 truncation probe; the other 94 never computed.
	if pulls != 6 {
		t.Fatalf("source pulled %d times; want 6", pulls)
	}
	if st.Bytes != int64(buf.Len()) {
		t.Fatalf("Bytes = %d, buffer = %d", st.Bytes, buf.Len())
	}
}

func TestStreamArrayByteBudget(t *testing.T) {
	pulls := 0
	var buf bytes.Buffer
	st, err := StreamArray(&buf, counting(1000, &pulls), Budget{MaxRows: 1000, MaxBytes: 40})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Truncated || st.Rows == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if int64(buf.Len()) > 40 {
		t.Fatalf("wrote %d bytes past the 40-byte budget", buf.Len())
	}
	var rows []int
	if err := json.Unmarshal(buf.Bytes(), &rows); err != nil {
		t.Fatalf("truncated output is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if len(rows) != st.Rows {
		t.Fatalf("decoded %d rows, stats say %d", len(rows), st.Rows)
	}
	if pulls > st.Rows+2 {
		t.Fatalf("source pulled %d times for %d delivered rows", pulls, st.Rows)
	}
}

func TestStreamArrayExactFitNotTruncated(t *testing.T) {
	pulls := 0
	var buf bytes.Buffer
	st, err := StreamArray(&buf, counting(5, &pulls), Budget{MaxRows: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.Truncated {
		t.Fatalf("exact fit marked truncated: %+v", st)
	}
	if buf.String() != "[0,1,2,3,4]" {
		t.Fatalf("body = %s", buf.String())
	}
}

// TestTopWordsFirstPageAllocs pins the laziness claim on a large-V
// model: a 10-row first page over V=200k must stay under a small,
// generous allocation bound — far below anything that materializes
// O(V) rows.
func TestTopWordsFirstPageAllocs(t *testing.T) {
	const V = 200_000
	m := testModel(t, V, 2, func(w, k int) int32 { return int32(w%97 + 1) })
	allocs := testing.AllocsPerRun(5, func() {
		it, err := TopWords(m, 0, 10)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Collect(Limit(it, 10)); err != nil {
			t.Fatal(err)
		}
	})
	// Heap of 10, a handful of closures, 10 rows. 100 is an order of
	// magnitude of headroom; materializing V rows would be >> 1000.
	if allocs > 100 {
		t.Fatalf("first page over V=%d cost %.0f allocs; want < 100", V, allocs)
	}
}

func TestVocabSliceIsLazy(t *testing.T) {
	m := testModel(t, 10_000, 4, skewed(10_000))
	// Limit(3) over the full-vocab scan: only 3 rows' O(K) sums run.
	rows, err := Collect(Limit(VocabSlice(m, ""), 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[2].ID != 2 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestLabelFallback(t *testing.T) {
	m := Model{Vocab: []string{"a"}}
	if got := m.label(0); got != "a" {
		t.Fatalf("label(0) = %q", got)
	}
	if got := m.label(7); got != "7" {
		t.Fatalf("label(7) = %q", got)
	}
	if !strings.HasPrefix(m.label(7), "7") {
		t.Fatal("decimal fallback broken")
	}
}
