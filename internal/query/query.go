// Package query is the topic-analytics layer over served models: it
// turns the infer engine's frozen sparse structures (word-topic
// counts, per-word Φ̂ columns, sparse fold-in mixtures) into composable
// streaming queries — top words and top documents per topic,
// similar-document search, topic-drift comparison between two
// published versions, and vocabulary slicing.
//
// Everything is built on lazily-evaluated pull iterators (Iter) so
// that no query ever materializes its full result: selection queries
// (top-N) keep a bounded heap of cursor+limit candidates while
// scanning, scan queries (vocabulary slices) compute each row on pull,
// and the HTTP layer streams rows straight into the response under a
// row/byte budget (StreamArray), emitting a cursor instead of the
// tail. Pagination composes as Limit(Skip(source, cursor), limit).
//
// The package depends only on internal/infer; cmd/warplda-serve mounts
// it under GET/POST /v1/models/{name}/query/* (see docs/API.md).
package query

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"warplda/internal/infer"
)

// Model is the query layer's view of one served model: its frozen
// inference engine and, when the model was trained with one, its
// vocabulary (word labels by token id).
type Model struct {
	Engine *infer.Engine
	Vocab  []string // may be nil; labels fall back to decimal ids
}

// label returns the display form of word id w.
func (m Model) label(w int32) string {
	if int(w) < len(m.Vocab) {
		return m.Vocab[w]
	}
	return strconv.Itoa(int(w))
}

// MaxSelectionDepth bounds cursor+limit for selection (top-N) queries:
// the selection heap is O(depth), so an unbounded cursor would let one
// request allocate arbitrarily. Deep pagination into ranked results is
// a smell anyway — rank 10000 of a topic's words is noise.
const MaxSelectionDepth = 10000

// ranked is one scored candidate in a selection query.
type ranked struct {
	id    int32
	score float64
}

// better reports whether a outranks b: higher score first, smaller id
// breaking ties, so every ranking in the package is deterministic.
func better(a, b ranked) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.id < b.id
}

// topHeap is a bounded min-heap of the best `depth` candidates seen so
// far, ordered so the root is the weakest retained candidate.
type topHeap struct {
	depth int
	h     []ranked
}

func (t *topHeap) offer(c ranked) {
	if t.depth <= 0 {
		return
	}
	if len(t.h) < t.depth {
		t.h = append(t.h, c)
		// Sift up: the root holds the weakest retained candidate, so a
		// parent outranking its child violates the invariant.
		for i := len(t.h) - 1; i > 0; {
			p := (i - 1) / 2
			if better(t.h[p], t.h[i]) {
				t.h[p], t.h[i] = t.h[i], t.h[p]
				i = p
				continue
			}
			break
		}
		return
	}
	if !better(c, t.h[0]) {
		return
	}
	t.h[0] = c
	// Sift down.
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < len(t.h) && !better(t.h[l], t.h[worst]) {
			worst = l
		}
		if r < len(t.h) && !better(t.h[r], t.h[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		t.h[i], t.h[worst] = t.h[worst], t.h[i]
		i = worst
	}
}

// drain returns the retained candidates best-first, consuming the heap.
func (t *topHeap) drain() []ranked {
	out := t.h
	// Heap order is only partial; a final sort of the O(depth) survivors
	// is cheap and gives the emission order.
	sortRanked(out)
	return out
}

func sortRanked(s []ranked) {
	// Insertion sort: depth is small and bounded (MaxSelectionDepth).
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && better(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// emitRanked wraps a lazily-run selection in an Iter: build runs on the
// first pull only, and the survivors are emitted one at a time.
func emitRanked[T any](build func() ([]ranked, error), row func(ranked) T) *Iter[T] {
	var rows []ranked
	built := false
	i := 0
	return NewIter(func() (T, bool, error) {
		var zero T
		if !built {
			r, err := build()
			if err != nil {
				return zero, false, err
			}
			rows, built = r, true
		}
		if i >= len(rows) {
			return zero, false, nil
		}
		r := rows[i]
		i++
		return row(r), true, nil
	})
}

// WordRow is one word in a topic's ranking.
type WordRow struct {
	ID    int32   `json:"id"`
	Word  string  `json:"word"`
	Count int32   `json:"count"`
	Phi   float64 `json:"phi"`
}

// TopWords ranks topic k's words by their frozen word-topic count
// (ties by word id), retaining only the best depth candidates during
// the O(V) column scan. The scan runs lazily, on the first pull.
func TopWords(m Model, topic, depth int) (*Iter[WordRow], error) {
	e := m.Engine
	if topic < 0 || topic >= e.K() {
		return nil, fmt.Errorf("query: topic %d outside [0,%d)", topic, e.K())
	}
	if depth, err := checkDepth(depth); err != nil {
		return nil, err
	} else if depth == 0 {
		return emptyIter[WordRow](), nil
	}
	build := func() ([]ranked, error) {
		t := topHeap{depth: depth}
		for w := 0; w < e.V(); w++ {
			if c := e.Count(w, topic); c > 0 {
				t.offer(ranked{id: int32(w), score: float64(c)})
			}
		}
		return t.drain(), nil
	}
	return emitRanked(build, func(r ranked) WordRow {
		return WordRow{
			ID:    r.id,
			Word:  m.label(r.id),
			Count: int32(r.score),
			Phi:   e.Phi(int(r.id), topic),
		}
	}), nil
}

// checkDepth validates a selection depth (cursor+limit).
func checkDepth(depth int) (int, error) {
	if depth < 0 {
		depth = 0
	}
	if depth > MaxSelectionDepth {
		return 0, fmt.Errorf("query: cursor+limit %d exceeds the selection depth cap %d", depth, MaxSelectionDepth)
	}
	return depth, nil
}

func emptyIter[T any]() *Iter[T] {
	return NewIter(func() (T, bool, error) { var zero T; return zero, false, nil })
}

// VocabRow is one vocabulary entry in a slice.
type VocabRow struct {
	ID   int32  `json:"id"`
	Word string `json:"word"`
	// Tokens is the word's total training token count across topics.
	Tokens int64 `json:"tokens"`
}

// VocabSlice iterates the model's vocabulary in id order, keeping only
// words whose label starts with prefix (empty prefix keeps all). Each
// row's per-word work (the O(K) count sum) runs on pull; skipped
// non-matching words cost only the prefix test.
func VocabSlice(m Model, prefix string) *Iter[VocabRow] {
	e := m.Engine
	w := 0
	return NewIter(func() (VocabRow, bool, error) {
		for ; w < e.V(); w++ {
			label := m.label(int32(w))
			if !strings.HasPrefix(label, prefix) {
				continue
			}
			var tokens int64
			for k := 0; k < e.K(); k++ {
				tokens += int64(e.Count(w, k))
			}
			row := VocabRow{ID: int32(w), Word: label, Tokens: tokens}
			w++
			return row, true, nil
		}
		return VocabRow{}, false, nil
	})
}

// DocRow is one candidate document in a per-topic ranking. Doc is the
// document's index in the request's candidate list.
type DocRow struct {
	Doc    int     `json:"doc"`
	Weight float64 `json:"weight"`
}

// TopDocs ranks candidate documents by the share of their tokens the
// fold-in chain assigns to topic k. Candidates are folded in one at a
// time — a bounded heap of depth survivors plus one sparse mixture are
// the only per-query state — and the fold runs lazily on the first
// pull. Results are deterministic in (docs, sweeps, seed).
func TopDocs(m Model, docs [][]int32, topic, sweeps int, seed uint64, depth int) (*Iter[DocRow], error) {
	e := m.Engine
	if topic < 0 || topic >= e.K() {
		return nil, fmt.Errorf("query: topic %d outside [0,%d)", topic, e.K())
	}
	depth, err := checkDepth(depth)
	if err != nil {
		return nil, err
	}
	if depth == 0 {
		return emptyIter[DocRow](), nil
	}
	build := func() ([]ranked, error) {
		t := topHeap{depth: depth}
		for i, doc := range docs {
			theta, err := e.InferSparse(doc, sweeps, seed)
			if err != nil {
				return nil, fmt.Errorf("query: doc %d: %w", i, err)
			}
			var w float64
			for _, entry := range theta {
				if entry.Topic == int32(topic) {
					w = entry.Weight
					break
				}
			}
			t.offer(ranked{id: int32(i), score: w})
		}
		return t.drain(), nil
	}
	return emitRanked(build, func(r ranked) DocRow {
		return DocRow{Doc: int(r.id), Weight: r.score}
	}), nil
}

// SimRow is one candidate document in a similarity ranking.
type SimRow struct {
	Doc   int     `json:"doc"`
	Score float64 `json:"score"`
}

// Similar ranks candidate documents by the cosine similarity of their
// sparse fold-in mixtures against the query document's — the sparse Θ
// dot product touches only topics both documents occupy. The query
// document folds in once; candidates fold one at a time under a
// bounded heap, lazily on the first pull.
func Similar(m Model, queryDoc []int32, docs [][]int32, sweeps int, seed uint64, depth int) (*Iter[SimRow], error) {
	e := m.Engine
	depth, err := checkDepth(depth)
	if err != nil {
		return nil, err
	}
	if depth == 0 {
		return emptyIter[SimRow](), nil
	}
	build := func() ([]ranked, error) {
		qTheta, err := e.InferSparse(queryDoc, sweeps, seed)
		if err != nil {
			return nil, fmt.Errorf("query: query doc: %w", err)
		}
		t := topHeap{depth: depth}
		for i, doc := range docs {
			theta, err := e.InferSparse(doc, sweeps, seed)
			if err != nil {
				return nil, fmt.Errorf("query: doc %d: %w", i, err)
			}
			t.offer(ranked{id: int32(i), score: infer.Cosine(qTheta, theta)})
		}
		return t.drain(), nil
	}
	return emitRanked(build, func(r ranked) SimRow {
		return SimRow{Doc: int(r.id), Score: r.score}
	}), nil
}

// DriftRow compares one topic between two published versions of a
// model: the L1 distance between the topic's Φ̂ columns, the Jaccard
// overlap of the two top-M word sets, and the sets themselves.
type DriftRow struct {
	Topic   int      `json:"topic"`
	L1      float64  `json:"l1"`
	Overlap float64  `json:"overlap"`
	TopA    []string `json:"top_a"`
	TopB    []string `json:"top_b"`
}

// Drift compares two versions of a model topic by topic. Both models
// must share dimensions (a publish sequence never changes V or K; two
// pinned <name>@<iter> versions of one training run always agree).
// Each topic's row — an O(V) column walk plus two bounded top-M
// selections — is computed on pull, so a row-limited or byte-limited
// response only pays for the topics it delivers.
func Drift(a, b Model, topM int) (*Iter[DriftRow], error) {
	if a.Engine.K() != b.Engine.K() || a.Engine.V() != b.Engine.V() {
		return nil, fmt.Errorf("query: model shapes differ: V=%d K=%d vs V=%d K=%d",
			a.Engine.V(), a.Engine.K(), b.Engine.V(), b.Engine.K())
	}
	if topM <= 0 {
		topM = 10
	}
	if topM > 100 {
		topM = 100
	}
	k := 0
	return NewIter(func() (DriftRow, bool, error) {
		if k >= a.Engine.K() {
			return DriftRow{}, false, nil
		}
		row := driftTopic(a, b, k, topM)
		k++
		return row, true, nil
	}), nil
}

// driftTopic computes one topic's drift row.
func driftTopic(a, b Model, k, topM int) DriftRow {
	ea, eb := a.Engine, b.Engine
	var l1 float64
	ta := topHeap{depth: topM}
	tb := topHeap{depth: topM}
	for w := 0; w < ea.V(); w++ {
		ca, cb := ea.Count(w, k), eb.Count(w, k)
		l1 += math.Abs(ea.Phi(w, k) - eb.Phi(w, k))
		if ca > 0 {
			ta.offer(ranked{id: int32(w), score: float64(ca)})
		}
		if cb > 0 {
			tb.offer(ranked{id: int32(w), score: float64(cb)})
		}
	}
	topA, topB := ta.drain(), tb.drain()
	inA := make(map[int32]bool, len(topA))
	for _, r := range topA {
		inA[r.id] = true
	}
	both := 0
	for _, r := range topB {
		if inA[r.id] {
			both++
		}
	}
	union := len(topA) + len(topB) - both
	overlap := 1.0 // two empty sets are identical
	if union > 0 {
		overlap = float64(both) / float64(union)
	}
	row := DriftRow{Topic: k, L1: l1, Overlap: overlap}
	for _, r := range topA {
		row.TopA = append(row.TopA, a.label(r.id))
	}
	for _, r := range topB {
		row.TopB = append(row.TopB, b.label(r.id))
	}
	return row
}
