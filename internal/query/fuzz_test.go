package query

import "testing"

// FuzzParseCursor feeds the /v1 pagination-cursor parser arbitrary
// client-controlled strings: it must never panic, every accepted cursor
// is a non-negative offset, and re-encoding the offset yields a cursor
// that parses back to the same position (cursors echo through clients
// opaquely, so the round trip is the API contract).
func FuzzParseCursor(f *testing.F) {
	for _, s := range []string{"", "0", "42", "-1", "+7", "999999999999999999999", "1e3", "0x10", " 5", "5 ", "héllo"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		n, err := ParseCursor(s)
		if err != nil {
			return
		}
		if n < 0 {
			t.Fatalf("ParseCursor(%q) accepted a negative offset %d", s, n)
		}
		back, err := ParseCursor(Cursor(n))
		if err != nil {
			t.Fatalf("Cursor(%d) = %q does not re-parse: %v", n, Cursor(n), err)
		}
		if back != n {
			t.Fatalf("cursor round trip moved the offset: %d -> %q -> %d", n, Cursor(n), back)
		}
	})
}
