package query

import (
	"encoding/json"
	"io"
)

// Budget bounds one streamed response. Zero fields mean "no bound on
// this axis" — the serve layer always sets both.
type Budget struct {
	// MaxRows caps the number of rows delivered.
	MaxRows int
	// MaxBytes caps the encoded size of the row array. A row that would
	// push the array past the cap is not written (it is recomputed by
	// the next page via the cursor).
	MaxBytes int64
}

// StreamStats reports what a StreamArray call actually delivered.
type StreamStats struct {
	// Rows is the number of rows written.
	Rows int
	// Bytes is the encoded size of the written array, brackets included.
	Bytes int64
	// Truncated is true when the budget ended the stream while the
	// iterator still had rows — the signal to emit a next_cursor.
	Truncated bool
}

// StreamArray encodes it as a JSON array directly into w, one row at a
// time, stopping at the first exhausted budget axis. No more than one
// row is ever materialized: each row is pulled, encoded, written, and
// dropped before the next pull, so a row-limited page over an expensive
// iterator computes only what it delivers (plus the single over-budget
// probe row, which the next page recomputes via its cursor).
//
// On an iterator error the array written so far is left unterminated
// and the error is returned — callers streaming HTTP bodies have
// already committed a 200 by then, so they append an error trailer
// instead of a status change (see the serve layer).
func StreamArray[T any](w io.Writer, it *Iter[T], b Budget) (StreamStats, error) {
	var st StreamStats
	write := func(p []byte) error {
		n, err := w.Write(p)
		st.Bytes += int64(n)
		return err
	}
	if err := write([]byte{'['}); err != nil {
		return st, err
	}
	for {
		if b.MaxRows > 0 && st.Rows >= b.MaxRows {
			// Probe: is there another row behind the cap?
			if _, ok := it.Next(); ok {
				st.Truncated = true
			} else if err := it.Err(); err != nil {
				return st, err
			}
			break
		}
		row, ok := it.Next()
		if !ok {
			if err := it.Err(); err != nil {
				return st, err
			}
			break
		}
		enc, err := json.Marshal(row)
		if err != nil {
			return st, err
		}
		// +2 covers the separator and the closing bracket.
		if b.MaxBytes > 0 && st.Bytes+int64(len(enc))+2 > b.MaxBytes {
			st.Truncated = true
			break
		}
		if st.Rows > 0 {
			if err := write([]byte{','}); err != nil {
				return st, err
			}
		}
		if err := write(enc); err != nil {
			return st, err
		}
		st.Rows++
	}
	err := write([]byte{']'})
	return st, err
}
