package query

import (
	"errors"
	"strings"
	"testing"
)

// counting returns an iterator over 0..n-1 that counts pulls of the
// underlying source — the probe for laziness tests.
func counting(n int, pulls *int) *Iter[int] {
	i := 0
	return NewIter(func() (int, bool, error) {
		*pulls++
		if i >= n {
			return 0, false, nil
		}
		v := i
		i++
		return v, true, nil
	})
}

func TestLimitIsLazy(t *testing.T) {
	pulls := 0
	it := Limit(counting(1000, &pulls), 3)
	if pulls != 0 {
		t.Fatalf("building the pipeline pulled %d rows; want 0", pulls)
	}
	rows, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0] != 0 || rows[2] != 2 {
		t.Fatalf("rows = %v", rows)
	}
	// Limit(3) must stop pulling once it has 3 rows: exactly 3 source
	// pulls, not 4 (no read-ahead) and certainly not 1000.
	if pulls != 3 {
		t.Fatalf("source pulled %d times for a 3-row page; want 3", pulls)
	}
}

func TestSkipLimitPagination(t *testing.T) {
	pulls := 0
	it := Limit(Skip(counting(100, &pulls), 10), 5)
	if pulls != 0 {
		t.Fatalf("wrap time pulled %d rows; want 0", pulls)
	}
	rows, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || rows[0] != 10 || rows[4] != 14 {
		t.Fatalf("rows = %v", rows)
	}
	if pulls != 15 {
		t.Fatalf("source pulled %d times; want cursor+limit = 15", pulls)
	}
}

func TestSkipPastEnd(t *testing.T) {
	pulls := 0
	it := Limit(Skip(counting(4, &pulls), 10), 5)
	rows, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("rows = %v; want empty", rows)
	}
}

func TestLimitZeroYieldsNothing(t *testing.T) {
	pulls := 0
	rows, err := Collect(Limit(counting(10, &pulls), 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 || pulls != 0 {
		t.Fatalf("rows=%v pulls=%d; want empty and zero pulls", rows, pulls)
	}
}

func TestIterErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	n := 0
	it := NewIter(func() (int, bool, error) {
		n++
		if n > 2 {
			return 0, false, boom
		}
		return n, true, nil
	})
	wrapped := Limit(Skip(it, 1), 5)
	rows, err := Collect(wrapped)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v; want boom", err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v; want the single pre-error row", rows)
	}
	// A terminated iterator stays terminated.
	if _, ok := wrapped.Next(); ok {
		t.Fatal("Next returned a row after an error")
	}
}

func TestParseCursor(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
		bad  bool
	}{
		{"", 0, false},
		{"0", 0, false},
		{"42", 42, false},
		{"-1", 0, true},
		{"x", 0, true},
		{"1.5", 0, true},
	} {
		got, err := ParseCursor(tc.in)
		if tc.bad {
			if err == nil {
				t.Errorf("ParseCursor(%q): want error", tc.in)
			} else if !strings.Contains(err.Error(), "bad cursor") {
				t.Errorf("ParseCursor(%q) error = %v", tc.in, err)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("ParseCursor(%q) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
	}
	if Cursor(17) != "17" {
		t.Fatalf("Cursor(17) = %q", Cursor(17))
	}
}
