package warplda

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"warplda/internal/fsio"
)

// Model file format magics. The version byte is bumped on incompatible
// changes; ReadModel accepts every version listed here.
//
//   - v1: magic, header (V, K, α, β, logLik), Cw, Ck, vocabulary block.
//   - v2: the same body, followed by a little-endian uint32 CRC32 (IEEE)
//     trailer over every body byte after the magic. The checksum lets a
//     reloading server reject torn or corrupted files instead of
//     serving garbage.
const (
	modelMagicV1 = "WARPLDA\x01"
	modelMagic   = "WARPLDA\x02" // current write format
)

// WriteTo serializes the model in a compact binary format (little
// endian): header, config, counts, optional vocabulary, CRC32 trailer.
// It implements io.WriterTo and always writes the current (v2,
// checksummed) format; ReadModel also accepts the pre-checksum v1
// layout.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	if _, err := bw.WriteString(modelMagic); err != nil {
		return n, err
	}
	n += int64(len(modelMagic))
	// Everything after the magic is checksummed; the trailer itself is not.
	crc := crc32.NewIEEE()
	out := io.MultiWriter(bw, crc)
	write := func(v any) error {
		if err := binary.Write(out, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	hdr := []any{
		int64(m.V), int64(m.Cfg.K),
		m.Cfg.Alpha, m.Cfg.Beta, m.LogLik,
	}
	for _, v := range hdr {
		if err := write(v); err != nil {
			return n, err
		}
	}
	if err := write(m.Cw); err != nil {
		return n, err
	}
	if err := write(m.Ck); err != nil {
		return n, err
	}
	// Vocabulary block: count, then length-prefixed words.
	hasVocab := int64(0)
	if m.Vocab != nil {
		hasVocab = 1
	}
	if err := write(hasVocab); err != nil {
		return n, err
	}
	if hasVocab == 1 {
		for _, word := range m.Vocab {
			if err := write(int32(len(word))); err != nil {
				return n, err
			}
			if _, err := out.Write([]byte(word)); err != nil {
				return n, err
			}
			n += int64(len(word))
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return n, err
	}
	n += 4
	return n, bw.Flush()
}

// WriteFile writes the model snapshot to path atomically: a temp file
// in the target directory, fsync, then rename. A process hot-watching
// path (the serving registry's reload poller) can therefore never
// observe a partial write — it sees the old complete file or the new
// complete file, and anything else fails the format's checksum.
func (m *Model) WriteFile(path string) (int64, error) {
	return fsio.AtomicWriteFile(path, ".warplda-model-*", m.WriteTo)
}

// ReadModel deserializes a model written by WriteTo. It accepts the
// current checksummed format and the legacy v1 layout; for checksummed
// files a trailer mismatch (torn write, bit rot) is an error before any
// model is returned.
func ReadModel(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(modelMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("warplda: reading model header: %w", err)
	}
	switch string(magic) {
	case modelMagicV1:
		return readModelBody(br)
	case modelMagic:
		cr := fsio.NewCRCReader(br)
		m, err := readModelBody(cr)
		if err != nil {
			return nil, err
		}
		var want uint32
		if err := binary.Read(br, binary.LittleEndian, &want); err != nil {
			return nil, fmt.Errorf("warplda: reading model checksum: %w", err)
		}
		if got := cr.Sum32(); got != want {
			return nil, fmt.Errorf("warplda: model checksum mismatch (file %08x, computed %08x): torn or corrupt file", want, got)
		}
		return m, nil
	default:
		return nil, fmt.Errorf("warplda: not a model file (bad magic)")
	}
}

// readModelBody parses the post-magic body shared by every format
// version and validates that the result can be served: plausible dims,
// finite positive priors (a NaN/Inf prior would make every Φ̂ entry
// NaN), and non-negative counts.
func readModelBody(r io.Reader) (*Model, error) {
	read := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var v64, k64 int64
	var alpha, beta, logLik float64
	for _, p := range []any{&v64, &k64, &alpha, &beta, &logLik} {
		if err := read(p); err != nil {
			return nil, fmt.Errorf("warplda: reading model header: %w", err)
		}
	}
	const maxDim = 1 << 31
	if v64 <= 0 || k64 <= 0 || v64 > maxDim || k64 > maxDim || v64*k64 > maxDim {
		return nil, fmt.Errorf("warplda: implausible model dims V=%d K=%d", v64, k64)
	}
	if !(alpha > 0) || !(beta > 0) || math.IsInf(alpha, 0) || math.IsInf(beta, 0) {
		return nil, fmt.Errorf("warplda: corrupt model hyper-parameters α=%g β=%g (Φ̂ would be NaN or non-normalizable)", alpha, beta)
	}
	if math.IsNaN(logLik) {
		return nil, fmt.Errorf("warplda: corrupt model log-likelihood (NaN)")
	}
	m := &Model{
		Cfg:    Config{K: int(k64), Alpha: alpha, Beta: beta},
		V:      int(v64),
		LogLik: logLik,
	}
	// The count matrices are read in bounded chunks so the allocation
	// high-water mark tracks the bytes actually arriving: a truncated or
	// hostile file whose header claims V×K = 2³¹ fails with a small
	// footprint instead of committing gigabytes up front.
	total := int(v64 * k64)
	buf := make([]int32, minInt(total, modelAllocChunk))
	m.Cw = make([]int32, 0, minInt(total, modelAllocChunk))
	for len(m.Cw) < total {
		n := minInt(total-len(m.Cw), len(buf))
		if err := read(buf[:n]); err != nil {
			return nil, fmt.Errorf("warplda: reading counts: %w", err)
		}
		m.Cw = append(m.Cw, buf[:n]...)
	}
	m.Ck = make([]int64, 0, minInt(int(k64), modelAllocChunk))
	for len(m.Ck) < int(k64) {
		var c int64
		if err := read(&c); err != nil {
			return nil, fmt.Errorf("warplda: reading counts: %w", err)
		}
		m.Ck = append(m.Ck, c)
	}
	for i, c := range m.Cw {
		if c < 0 {
			return nil, fmt.Errorf("warplda: negative word-topic count Cw[%d] = %d", i, c)
		}
	}
	for k, c := range m.Ck {
		if c < 0 {
			return nil, fmt.Errorf("warplda: negative topic count Ck[%d] = %d", k, c)
		}
	}
	var hasVocab int64
	if err := read(&hasVocab); err != nil {
		return nil, fmt.Errorf("warplda: reading vocabulary flag: %w", err)
	}
	switch hasVocab {
	case 0:
	case 1:
		m.Vocab = make([]string, 0, minInt(int(v64), modelAllocChunk))
		for i := 0; i < int(v64); i++ {
			var l int32
			if err := read(&l); err != nil {
				return nil, fmt.Errorf("warplda: reading vocabulary: %w", err)
			}
			if l < 0 || l > 1<<20 {
				return nil, fmt.Errorf("warplda: implausible word length %d", l)
			}
			wbuf := make([]byte, l)
			if _, err := io.ReadFull(r, wbuf); err != nil {
				return nil, fmt.Errorf("warplda: reading vocabulary: %w", err)
			}
			m.Vocab = append(m.Vocab, string(wbuf))
		}
	default:
		return nil, fmt.Errorf("warplda: corrupt vocabulary flag %d", hasVocab)
	}
	return m, nil
}

// modelAllocChunk bounds how many count entries readModelBody allocates
// ahead of the bytes actually read (the same defense fsio.ReadDelta
// applies to WARPDLT files).
const modelAllocChunk = 64 << 10

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// HeldOutPerplexity evaluates the model on unseen documents: each test
// document is folded in with the O(1)-per-token MH engine (see
// DocTopics) and scored by exp(−(1/T) Σ log p(w | θ̂, Φ̂)) — the
// standard held-out metric. Lower is better.
func (m *Model) HeldOutPerplexity(docs [][]int32, sweeps int, seed uint64) float64 {
	var logp float64
	tokens := 0
	for i, doc := range docs {
		if len(doc) == 0 {
			continue
		}
		theta := m.DocTopics(doc, sweeps, seed+uint64(i))
		for _, w := range doc {
			var p float64
			for k := 0; k < m.Cfg.K; k++ {
				p += theta[k] * m.Phi(int(w), k)
			}
			logp += math.Log(p)
			tokens++
		}
	}
	if tokens == 0 {
		return math.Inf(1)
	}
	return math.Exp(-logp / float64(tokens))
}

// Split partitions a corpus into train and test halves by document,
// deterministic in seed: each document lands in test with probability
// testFrac. Both halves share V and Vocab.
func Split(c *Corpus, testFrac float64, seed uint64) (train, test *Corpus) {
	r := newFoldInRNG(seed)
	train = &Corpus{V: c.V, Vocab: c.Vocab}
	test = &Corpus{V: c.V, Vocab: c.Vocab}
	for _, doc := range c.Docs {
		if r.Float64() < testFrac {
			test.Docs = append(test.Docs, doc)
		} else {
			train.Docs = append(train.Docs, doc)
		}
	}
	return train, test
}
