package warplda

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// modelMagic identifies the binary model format; bump the version byte on
// incompatible changes.
const modelMagic = "WARPLDA\x01"

// WriteTo serializes the model in a compact binary format (little
// endian): header, config, counts, optional vocabulary. It implements
// io.WriterTo.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if _, err := bw.WriteString(modelMagic); err != nil {
		return n, err
	}
	n += int64(len(modelMagic))
	hdr := []any{
		int64(m.V), int64(m.Cfg.K),
		m.Cfg.Alpha, m.Cfg.Beta, m.LogLik,
	}
	for _, v := range hdr {
		if err := write(v); err != nil {
			return n, err
		}
	}
	if err := write(m.Cw); err != nil {
		return n, err
	}
	if err := write(m.Ck); err != nil {
		return n, err
	}
	// Vocabulary block: count, then length-prefixed words.
	hasVocab := int64(0)
	if m.Vocab != nil {
		hasVocab = 1
	}
	if err := write(hasVocab); err != nil {
		return n, err
	}
	if hasVocab == 1 {
		for _, word := range m.Vocab {
			if err := write(int32(len(word))); err != nil {
				return n, err
			}
			if _, err := bw.WriteString(word); err != nil {
				return n, err
			}
			n += int64(len(word))
		}
	}
	return n, bw.Flush()
}

// ReadModel deserializes a model written by WriteTo.
func ReadModel(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(modelMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("warplda: reading model header: %w", err)
	}
	if string(magic) != modelMagic {
		return nil, fmt.Errorf("warplda: not a model file (bad magic)")
	}
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }
	var v64, k64 int64
	var alpha, beta, logLik float64
	for _, p := range []any{&v64, &k64, &alpha, &beta, &logLik} {
		if err := read(p); err != nil {
			return nil, fmt.Errorf("warplda: reading model header: %w", err)
		}
	}
	const maxDim = 1 << 31
	if v64 <= 0 || k64 <= 0 || v64 > maxDim || k64 > maxDim || v64*k64 > maxDim {
		return nil, fmt.Errorf("warplda: implausible model dims V=%d K=%d", v64, k64)
	}
	if !(alpha > 0) || !(beta > 0) || math.IsNaN(logLik) {
		return nil, fmt.Errorf("warplda: corrupt model hyper-parameters")
	}
	m := &Model{
		Cfg:    Config{K: int(k64), Alpha: alpha, Beta: beta},
		V:      int(v64),
		Cw:     make([]int32, v64*k64),
		Ck:     make([]int64, k64),
		LogLik: logLik,
	}
	if err := read(m.Cw); err != nil {
		return nil, fmt.Errorf("warplda: reading counts: %w", err)
	}
	if err := read(m.Ck); err != nil {
		return nil, fmt.Errorf("warplda: reading counts: %w", err)
	}
	var hasVocab int64
	if err := read(&hasVocab); err != nil {
		return nil, fmt.Errorf("warplda: reading vocabulary flag: %w", err)
	}
	if hasVocab == 1 {
		m.Vocab = make([]string, v64)
		for i := range m.Vocab {
			var l int32
			if err := read(&l); err != nil {
				return nil, fmt.Errorf("warplda: reading vocabulary: %w", err)
			}
			if l < 0 || l > 1<<20 {
				return nil, fmt.Errorf("warplda: implausible word length %d", l)
			}
			buf := make([]byte, l)
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("warplda: reading vocabulary: %w", err)
			}
			m.Vocab[i] = string(buf)
		}
	}
	return m, nil
}

// HeldOutPerplexity evaluates the model on unseen documents: each test
// document is folded in with the O(1)-per-token MH engine (see
// DocTopics) and scored by exp(−(1/T) Σ log p(w | θ̂, Φ̂)) — the
// standard held-out metric. Lower is better.
func (m *Model) HeldOutPerplexity(docs [][]int32, sweeps int, seed uint64) float64 {
	var logp float64
	tokens := 0
	for i, doc := range docs {
		if len(doc) == 0 {
			continue
		}
		theta := m.DocTopics(doc, sweeps, seed+uint64(i))
		for _, w := range doc {
			var p float64
			for k := 0; k < m.Cfg.K; k++ {
				p += theta[k] * m.Phi(int(w), k)
			}
			logp += math.Log(p)
			tokens++
		}
	}
	if tokens == 0 {
		return math.Inf(1)
	}
	return math.Exp(-logp / float64(tokens))
}

// Split partitions a corpus into train and test halves by document,
// deterministic in seed: each document lands in test with probability
// testFrac. Both halves share V and Vocab.
func Split(c *Corpus, testFrac float64, seed uint64) (train, test *Corpus) {
	r := newFoldInRNG(seed)
	train = &Corpus{V: c.V, Vocab: c.Vocab}
	test = &Corpus{V: c.V, Vocab: c.Vocab}
	for _, doc := range c.Docs {
		if r.Float64() < testFrac {
			test.Docs = append(test.Docs, doc)
		} else {
			train.Docs = append(train.Docs, doc)
		}
	}
	return train, test
}
