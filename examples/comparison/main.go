// Comparison: run every sampler in the repository on one corpus and
// print a convergence table — a user-sized version of the paper's
// Figure 5 experiment, useful for picking an algorithm for your own
// workload.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"

	"warplda"
)

func main() {
	c, err := warplda.GenerateLDA(warplda.SyntheticConfig{
		D: 800, V: 1000, K: 16, MeanLen: 80, Alpha: 0.1, Beta: 0.01, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %s\n", c.Stats())
	fmt.Printf("%-10s %6s %14s %9s %10s\n", "sampler", "iter", "logLik", "time(s)", "Mtoken/s")

	const iters, every = 30, 10
	for _, name := range warplda.Algorithms {
		cfg := warplda.Defaults(16)
		cfg.M = 2
		s, err := warplda.NewSampler(name, c, cfg)
		if err != nil {
			log.Fatal(err)
		}
		run := warplda.TrainSampler(s, c, cfg, iters, every)
		for _, p := range run.Points {
			fmt.Printf("%-10s %6d %14.4e %9.3f %10.2f\n",
				run.Sampler, p.Iter, p.LogLik, p.Elapsed.Seconds(), p.TokensSec/1e6)
		}
	}
}
