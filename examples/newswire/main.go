// Newswire: topic discovery on raw text — the text-analysis use case the
// paper's introduction motivates. A small two-domain article collection
// is tokenized with the same preprocessing as the paper's ClueWeb12
// pipeline (lowercase, alphanumerics only, stop words removed), trained
// with WarpLDA, and the recovered topics are printed with per-document
// mixtures.
//
//	go run ./examples/newswire
package main

import (
	"fmt"
	"log"
	"strings"

	"warplda"
)

var articles = []string{
	"The central bank raised interest rates again as inflation pressured markets and bond yields climbed across trading desks.",
	"Stocks rallied after the earnings report; investors priced in slower inflation and the market closed higher on heavy trading.",
	"The quarterly earnings beat forecasts, lifting shares; analysts raised price targets as trading volume surged on the exchange.",
	"Bond markets sold off when the bank signalled further rate hikes to fight inflation, and currency traders repositioned.",
	"The championship match went to extra time before the striker scored; the team celebrated the trophy with their fans.",
	"Coach praised the defence after the team kept a clean sheet; the goalkeeper made three saves in the final minutes of the match.",
	"Fans filled the stadium as the league season opened; the home team won with a late goal from their young striker.",
	"The transfer window closed with the club signing a midfielder; the coach said the squad is ready for the cup match.",
	"Rate hikes cooled the housing market while equity investors rotated into bonds, and the exchange saw record option trading.",
	"A hat-trick from the striker sealed the league title; players lifted the trophy as the stadium sang through the night.",
}

func main() {
	c := warplda.FromText(articles, warplda.TokenizeOptions{MinWordLen: 3})
	fmt.Printf("corpus: %s\n", c.Stats())

	cfg := warplda.Defaults(2)
	cfg.Alpha = 0.3 // short documents: a little more smoothing than 50/K
	cfg.M = 2
	model, err := warplda.Train(c, cfg, 200)
	if err != nil {
		log.Fatal(err)
	}

	for k := 0; k < cfg.K; k++ {
		fmt.Printf("topic %d: %s\n", k, strings.Join(model.TopWords(k, 8), " "))
	}
	// Topic indices are exchangeable across runs, so label them by their
	// top word instead of assuming which index landed on which domain.
	label := func(k int) string { return "«" + model.TopWords(k, 1)[0] + "»" }
	for d, doc := range c.Docs {
		theta := model.DocTopics(doc, 10, uint64(d))
		fmt.Printf("doc %2d  %s=%.2f %s=%.2f  %q\n",
			d, label(0), theta[0], label(1), theta[1], articles[d][:40]+"...")
	}
}
