// Serving: the full production loop — train a model, save it in the
// checksummed snapshot format, reload it (as warplda-serve's registry
// does on every load and hot reload), build the batched inference
// engine once, and answer query batches.
//
//	go run ./examples/serving
//
// The same model file works over HTTP, alone or as one tenant of a
// multi-model registry directory:
//
//	go run ./cmd/warplda-serve -model model.bin &
//	curl -s localhost:8080/infer -d '{"docs": [[0, 5, 7, 5]]}'
//	curl -s localhost:8080/models
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"warplda"
)

func main() {
	// Train on a synthetic corpus with known topic structure.
	c, err := warplda.GenerateLDA(warplda.SyntheticConfig{
		D: 2000, V: 3000, K: 20, MeanLen: 100, Alpha: 0.1, Beta: 0.01, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	train, queries := warplda.Split(c, 0.1, 7)
	fmt.Printf("train: %s\n", train.Stats())

	model, err := warplda.Train(train, warplda.Defaults(20), 100)
	if err != nil {
		log.Fatal(err)
	}

	// Snapshot round trip — in production this is a file on disk
	// (warplda-train -save / warplda-serve -model).
	var snapshot bytes.Buffer
	size, err := model.WriteTo(&snapshot)
	if err != nil {
		log.Fatal(err)
	}
	served, err := warplda.ReadModel(&snapshot)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot: %d bytes, V=%d K=%d\n", size, served.V, served.Cfg.K)

	// Build the engine once: per-word alias tables over Φ̂ are
	// precomputed here and amortized over every query batch.
	engine, err := warplda.NewInferEngine(served, warplda.InferOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Answer a batch of unseen documents.
	batch := queries.Docs
	start := time.Now()
	thetas, err := engine.InferBatch(batch, 20, 42)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("inferred %d unseen docs in %v (%.0f docs/s)\n",
		len(batch), elapsed.Round(time.Millisecond),
		float64(len(batch))/elapsed.Seconds())

	for i := 0; i < 3 && i < len(thetas); i++ {
		best, bestP := 0, 0.0
		for k, p := range thetas[i] {
			if p > bestP {
				best, bestP = k, p
			}
		}
		fmt.Printf("query doc %d (%3d tokens): topic %2d (p=%.2f)\n",
			i, len(batch[i]), best, bestP)
	}
}
