// Distributed: train WarpLDA on the simulated cluster of the paper's
// Section 5 and inspect the cost breakdown per iteration — load balance
// of the greedy partitioner, alltoall volume, and the modeled iteration
// time with compute/communication overlap.
//
// This example uses internal packages, which is possible because it
// lives inside the module; it demonstrates the distributed substrate the
// Figure 6 / Figure 9 experiments are built on.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"warplda/internal/cluster"
	"warplda/internal/corpus"
	"warplda/internal/eval"
	"warplda/internal/sampler"
)

func main() {
	c, err := corpus.GenerateLDA(corpus.SyntheticConfig{
		D: 2000, V: 2500, K: 20, MeanLen: 100, Alpha: 0.1, Beta: 0.01, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %s\n", c.Stats())

	cfg := sampler.PaperDefaults(50)
	cfg.M = 2
	sim, err := cluster.New(c, cfg, cluster.Config{Workers: 16, Network: cluster.InfiniBand()})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%4s %14s %12s %12s %12s %10s\n",
		"iter", "logLik", "compute(s)", "comm(s)", "modeled(s)", "MB moved")
	for it := 1; it <= 10; it++ {
		st := sim.IterateStats()
		ll := eval.LogJoint(c, sim.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
		fmt.Printf("%4d %14.4e %12.6f %12.6f %12.6f %10.2f\n",
			it, ll, st.ComputeSeconds, st.CommSeconds, st.ModeledSeconds,
			float64(st.BytesMoved)/1e6)
	}
	fmt.Printf("cumulative modeled time: %.4fs  (imbalance %.4f)\n",
		sim.ModeledSeconds(), sim.IterateStats().Imbalance)
}
