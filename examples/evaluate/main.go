// Evaluate: the model-selection workflow a practitioner runs — split a
// corpus into train/test, train models at several topic counts, compare
// held-out perplexity and topic coherence, then persist the winner to
// disk and load it back.
//
//	go run ./examples/evaluate
package main

import (
	"bytes"
	"fmt"
	"log"

	"warplda"
)

func main() {
	c, err := warplda.GenerateLDA(warplda.SyntheticConfig{
		D: 1500, V: 2500, K: 12, MeanLen: 100, Alpha: 0.1, Beta: 0.01, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	train, test := warplda.Split(c, 0.2, 7)
	fmt.Printf("train: %s\ntest:  %s\n", train.Stats(), test.Stats())

	fmt.Printf("%6s %18s %14s\n", "K", "held-out ppl", "coherence")
	var best *warplda.Model
	bestPpl := 0.0
	for _, k := range []int{4, 12, 40} {
		cfg := warplda.Defaults(k)
		cfg.M = 2
		model, err := warplda.Train(train, cfg, 80)
		if err != nil {
			log.Fatal(err)
		}
		ppl := model.HeldOutPerplexity(test.Docs, 10, 3)
		var coh float64
		for t := 0; t < k; t++ {
			coh += model.Coherence(train, t, 10)
		}
		coh /= float64(k)
		fmt.Printf("%6d %18.1f %14.2f\n", k, ppl, coh)
		if best == nil || ppl < bestPpl {
			best, bestPpl = model, ppl
		}
	}

	// Persist and reload the winner.
	var buf bytes.Buffer
	if _, err := best.WriteTo(&buf); err != nil {
		log.Fatal(err)
	}
	size := buf.Len()
	loaded, err := warplda.ReadModel(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best model: K=%d, %d bytes on disk, reload ppl %.1f\n",
		loaded.Cfg.K, size, loaded.HeldOutPerplexity(test.Docs, 10, 3))
}
