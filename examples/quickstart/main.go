// Quickstart: generate a synthetic corpus, train WarpLDA with the
// paper's default hyper-parameters, and inspect the learned topics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"warplda"
)

func main() {
	// A corpus drawn from the LDA generative process: 1000 documents,
	// 2000 words, 10 underlying topics.
	c, err := warplda.GenerateLDA(warplda.SyntheticConfig{
		D: 1000, V: 2000, K: 10, MeanLen: 120, Alpha: 0.1, Beta: 0.01, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %s\n", c.Stats())

	// Train: K topics, α=50/K, β=0.01, M=1 MH step per token.
	cfg := warplda.Defaults(10)
	model, err := warplda.Train(c, cfg, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: logLik %.4e\n", model.LogLik)

	// Topics as their most probable words.
	for k := 0; k < 5; k++ {
		fmt.Printf("topic %d: %v\n", k, model.TopWords(k, 8))
	}

	// Fold in a document and read its topic mixture.
	theta := model.DocTopics(c.Docs[0], 10, 7)
	best, bestP := 0, 0.0
	for k, p := range theta {
		if p > bestP {
			best, bestP = k, p
		}
	}
	fmt.Printf("document 0: dominant topic %d (p=%.2f)\n", best, bestP)
}
