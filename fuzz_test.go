package warplda

import (
	"bytes"
	"testing"
)

// FuzzReadModel feeds ReadModel hostile bytes. The decoder must never
// panic and never allocate proportionally to a forged header (the
// harness's -fuzzminimizetime memory limits catch over-allocation as a
// crash); every input it does accept must describe a servable model and
// survive a write/read round trip unchanged.
func FuzzReadModel(f *testing.F) {
	// A real v2 model with vocabulary, as WriteTo produces it.
	m := &Model{
		Cfg:    Config{K: 2, Alpha: 0.5, Beta: 0.01},
		V:      3,
		Vocab:  []string{"alpha", "beta", "gamma"},
		Cw:     []int32{3, 0, 1, 2, 0, 4},
		Ck:     []int64{4, 6},
		LogLik: -12.5,
	}
	var valid bytes.Buffer
	if _, err := m.WriteTo(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(modelMagic))
	f.Add([]byte(modelMagicV1))
	f.Add([]byte{})
	f.Add(valid.Bytes()[:valid.Len()/2])
	flipped := append([]byte(nil), valid.Bytes()...)
	flipped[valid.Len()/2] ^= 0x20
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadModel(bytes.NewReader(data))
		if err != nil {
			return
		}
		if got.V <= 0 || got.Cfg.K <= 0 || len(got.Cw) != got.V*got.Cfg.K || len(got.Ck) != got.Cfg.K {
			t.Fatalf("accepted model has inconsistent dims: V=%d K=%d |Cw|=%d |Ck|=%d",
				got.V, got.Cfg.K, len(got.Cw), len(got.Ck))
		}
		if got.Vocab != nil && len(got.Vocab) != got.V {
			t.Fatalf("accepted model has %d vocabulary entries for V=%d", len(got.Vocab), got.V)
		}
		for i, c := range got.Cw {
			if c < 0 {
				t.Fatalf("accepted model has negative count Cw[%d]=%d", i, c)
			}
		}
		var re bytes.Buffer
		if _, err := got.WriteTo(&re); err != nil {
			t.Fatalf("accepted model does not re-encode: %v", err)
		}
		back, err := ReadModel(bytes.NewReader(re.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded model does not re-read: %v", err)
		}
		if back.V != got.V || back.Cfg.K != got.Cfg.K || !equalI32(back.Cw, got.Cw) || !equalI64(back.Ck, got.Ck) {
			t.Fatal("model changed across a write/read round trip")
		}
	})
}

func equalI32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalI64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestReadModelTruncationFootprint pins the chunked-allocation defense:
// a header claiming the maximum V×K followed by almost no data must
// fail on the read path without committing the claimed gigabytes.
func TestReadModelTruncationFootprint(t *testing.T) {
	// Hand-roll magic + the 40-byte header claiming V=2^16, K=2^15
	// (V×K = 2^31 cells, 8 GiB of int32s) — then stop: the body never
	// arrives.
	var full bytes.Buffer
	full.WriteString(modelMagic)
	le := func(x uint64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(x >> (8 * i))
		}
		full.Write(b[:])
	}
	le(1 << 16)            // V
	le(1 << 15)            // K
	le(0x3FE0000000000000) // 0.5
	le(0x3F847AE147AE147B) // 0.01
	le(0)                  // logLik 0.0
	if _, err := ReadModel(bytes.NewReader(full.Bytes())); err == nil {
		t.Fatal("truncated 2^31-cell model accepted")
	}
}
