package warplda

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

func trainedModel(t *testing.T, withVocab bool) (*Corpus, *Model) {
	t.Helper()
	var c *Corpus
	if withVocab {
		c = FromText([]string{
			"alpha beta gamma alpha beta",
			"gamma delta alpha beta gamma",
			"stock bond yield stock bond",
			"bond yield stock yield bond",
		}, TokenizeOptions{})
	} else {
		c = apiCorpus(t)
	}
	m, err := Train(c, Defaults(3), 15)
	if err != nil {
		t.Fatal(err)
	}
	return c, m
}

func TestModelRoundTrip(t *testing.T) {
	_, m := trainedModel(t, true)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.V != m.V || got.Cfg.K != m.Cfg.K {
		t.Fatalf("dims changed: %d/%d vs %d/%d", got.V, got.Cfg.K, m.V, m.Cfg.K)
	}
	if got.Cfg.Alpha != m.Cfg.Alpha || got.Cfg.Beta != m.Cfg.Beta || got.LogLik != m.LogLik {
		t.Fatal("hyper-parameters or logLik changed")
	}
	if !reflect.DeepEqual(got.Cw, m.Cw) || !reflect.DeepEqual(got.Ck, m.Ck) {
		t.Fatal("counts changed")
	}
	if !reflect.DeepEqual(got.Vocab, m.Vocab) {
		t.Fatal("vocab changed")
	}
	// The deserialized model behaves identically.
	if !reflect.DeepEqual(got.TopWords(0, 3), m.TopWords(0, 3)) {
		t.Fatal("TopWords diverges after round trip")
	}
}

func TestModelRoundTripNoVocab(t *testing.T) {
	_, m := trainedModel(t, false)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Vocab != nil {
		t.Fatal("vocab materialized from nothing")
	}
	if !reflect.DeepEqual(got.Cw, m.Cw) {
		t.Fatal("counts changed")
	}
}

func TestReadModelRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":     "",
		"bad magic": "NOTAMODELXXXXXXXXXXXXXXXXXXXXXXX",
		"truncated": modelMagic,
	}
	for name, in := range cases {
		if _, err := ReadModel(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Corrupt dims.
	_, m := trainedModel(t, false)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for i := len(modelMagic); i < len(modelMagic)+8; i++ {
		b[i] = 0xff // V becomes a huge/negative value
	}
	if _, err := ReadModel(bytes.NewReader(b)); err == nil {
		t.Error("corrupt dims accepted")
	}
}

func TestSplitPartitionsDocs(t *testing.T) {
	c := apiCorpus(t)
	train, test := Split(c, 0.25, 9)
	if train.NumDocs()+test.NumDocs() != c.NumDocs() {
		t.Fatal("split lost documents")
	}
	if test.NumDocs() == 0 || train.NumDocs() == 0 {
		t.Fatal("degenerate split")
	}
	if train.V != c.V || test.V != c.V {
		t.Fatal("split changed V")
	}
	// Deterministic.
	tr2, te2 := Split(c, 0.25, 9)
	if tr2.NumDocs() != train.NumDocs() || te2.NumDocs() != test.NumDocs() {
		t.Fatal("split not deterministic")
	}
}

func TestHeldOutPerplexity(t *testing.T) {
	c, err := GenerateLDA(SyntheticConfig{D: 400, V: 300, K: 5, MeanLen: 60, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	train, test := Split(c, 0.2, 3)
	trained, err := Train(train, Defaults(5), 40)
	if err != nil {
		t.Fatal(err)
	}
	ppl := trained.HeldOutPerplexity(test.Docs, 10, 5)
	if math.IsNaN(ppl) || ppl <= 1 {
		t.Fatalf("implausible perplexity %g", ppl)
	}
	// A trained model must beat an untrained one on held-out data.
	untrained, err := Train(train, Defaults(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	pplU := untrained.HeldOutPerplexity(test.Docs, 10, 5)
	if ppl >= pplU {
		t.Fatalf("trained ppl %g not below untrained %g", ppl, pplU)
	}
	// And both must beat the uniform bound V.
	if ppl >= float64(c.V) {
		t.Fatalf("trained ppl %g above uniform bound %d", ppl, c.V)
	}
	if inf := trained.HeldOutPerplexity(nil, 5, 1); !math.IsInf(inf, 1) {
		t.Fatal("no-docs perplexity not +inf")
	}
}
