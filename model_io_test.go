package warplda

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"strings"
	"testing"
)

func trainedModel(t *testing.T, withVocab bool) (*Corpus, *Model) {
	t.Helper()
	var c *Corpus
	if withVocab {
		c = FromText([]string{
			"alpha beta gamma alpha beta",
			"gamma delta alpha beta gamma",
			"stock bond yield stock bond",
			"bond yield stock yield bond",
		}, TokenizeOptions{})
	} else {
		c = apiCorpus(t)
	}
	m, err := Train(c, Defaults(3), 15)
	if err != nil {
		t.Fatal(err)
	}
	return c, m
}

func TestModelRoundTrip(t *testing.T) {
	_, m := trainedModel(t, true)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.V != m.V || got.Cfg.K != m.Cfg.K {
		t.Fatalf("dims changed: %d/%d vs %d/%d", got.V, got.Cfg.K, m.V, m.Cfg.K)
	}
	if got.Cfg.Alpha != m.Cfg.Alpha || got.Cfg.Beta != m.Cfg.Beta || got.LogLik != m.LogLik {
		t.Fatal("hyper-parameters or logLik changed")
	}
	if !reflect.DeepEqual(got.Cw, m.Cw) || !reflect.DeepEqual(got.Ck, m.Ck) {
		t.Fatal("counts changed")
	}
	if !reflect.DeepEqual(got.Vocab, m.Vocab) {
		t.Fatal("vocab changed")
	}
	// The deserialized model behaves identically.
	if !reflect.DeepEqual(got.TopWords(0, 3), m.TopWords(0, 3)) {
		t.Fatal("TopWords diverges after round trip")
	}
}

func TestModelRoundTripNoVocab(t *testing.T) {
	_, m := trainedModel(t, false)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Vocab != nil {
		t.Fatal("vocab materialized from nothing")
	}
	if !reflect.DeepEqual(got.Cw, m.Cw) {
		t.Fatal("counts changed")
	}
}

// writeLegacyV1 serializes m in the pre-checksum v1 layout, matching
// the original WriteTo byte for byte, so backward compatibility stays
// pinned even though the writer now always emits v2.
func writeLegacyV1(t *testing.T, m *Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(modelMagicV1)
	write := func(v any) {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			t.Fatal(err)
		}
	}
	write(int64(m.V))
	write(int64(m.Cfg.K))
	write(m.Cfg.Alpha)
	write(m.Cfg.Beta)
	write(m.LogLik)
	write(m.Cw)
	write(m.Ck)
	if m.Vocab == nil {
		write(int64(0))
	} else {
		write(int64(1))
		for _, w := range m.Vocab {
			write(int32(len(w)))
			buf.WriteString(w)
		}
	}
	return buf.Bytes()
}

func TestReadModelLegacyV1(t *testing.T) {
	_, m := trainedModel(t, true)
	got, err := ReadModel(bytes.NewReader(writeLegacyV1(t, m)))
	if err != nil {
		t.Fatalf("v1 file rejected: %v", err)
	}
	if !reflect.DeepEqual(got.Cw, m.Cw) || !reflect.DeepEqual(got.Vocab, m.Vocab) {
		t.Fatal("v1 round trip changed the model")
	}
}

// TestReadModelCorruption feeds ReadModel every corruption class the
// serving registry must survive on hot reload: each case must return a
// descriptive error — never a panic, never a silently-broken model.
func TestReadModelCorruption(t *testing.T) {
	_, m := trainedModel(t, true)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	corrupt := func(mutate func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return mutate(b)
	}
	nanPhi := func() []byte {
		// A NaN β poisons every Φ̂_wk = (C_wk+β)/(C_k+β̄) entry. Written
		// through WriteTo so the checksum is valid: validation, not the
		// CRC, must catch it.
		bad := *m
		bad.Cfg.Beta = math.NaN()
		var nb bytes.Buffer
		if _, err := bad.WriteTo(&nb); err != nil {
			t.Fatal(err)
		}
		return nb.Bytes()
	}
	negCount := func() []byte {
		bad := *m
		bad.Cw = append([]int32(nil), m.Cw...)
		bad.Cw[3] = -7
		var nb bytes.Buffer
		if _, err := bad.WriteTo(&nb); err != nil {
			t.Fatal(err)
		}
		return nb.Bytes()
	}

	cases := map[string]struct {
		in      []byte
		errWant string // substring the error must contain
	}{
		"empty":            {nil, "reading model header"},
		"bad magic":        {[]byte("NOTAMODELXXXXXXXXXXXXXXXXXXXXXXX"), "bad magic"},
		"magic only":       {[]byte(modelMagic), "reading model header"},
		"truncated header": {good[:12], "reading model header"},
		"truncated counts": {good[:len(modelMagic)+40+6], "reading counts"},
		"missing trailer":  {good[:len(good)-4], ""},
		"checksum mismatch": {corrupt(func(b []byte) []byte {
			b[len(modelMagic)+40+2] ^= 0x40 // flip a bit inside Cw
			return b
		}), "checksum mismatch"},
		"huge dims": {corrupt(func(b []byte) []byte {
			for i := len(modelMagic); i < len(modelMagic)+8; i++ {
				b[i] = 0xff
			}
			return b
		}), "implausible model dims"},
		"NaN in phi":     {nanPhi(), "Φ̂ would be NaN"},
		"negative count": {negCount(), "negative word-topic count"},
	}
	for name, tc := range cases {
		got, err := ReadModel(bytes.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: accepted (model V=%d K=%d)", name, got.V, got.Cfg.K)
			continue
		}
		if tc.errWant != "" && !strings.Contains(err.Error(), tc.errWant) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.errWant)
		}
	}
}

func TestWriteToReportsSize(t *testing.T) {
	_, m := trainedModel(t, true)
	var buf bytes.Buffer
	n, err := m.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
}

func TestSplitPartitionsDocs(t *testing.T) {
	c := apiCorpus(t)
	train, test := Split(c, 0.25, 9)
	if train.NumDocs()+test.NumDocs() != c.NumDocs() {
		t.Fatal("split lost documents")
	}
	if test.NumDocs() == 0 || train.NumDocs() == 0 {
		t.Fatal("degenerate split")
	}
	if train.V != c.V || test.V != c.V {
		t.Fatal("split changed V")
	}
	// Deterministic.
	tr2, te2 := Split(c, 0.25, 9)
	if tr2.NumDocs() != train.NumDocs() || te2.NumDocs() != test.NumDocs() {
		t.Fatal("split not deterministic")
	}
}

func TestHeldOutPerplexity(t *testing.T) {
	c, err := GenerateLDA(SyntheticConfig{D: 400, V: 300, K: 5, MeanLen: 60, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	train, test := Split(c, 0.2, 3)
	trained, err := Train(train, Defaults(5), 40)
	if err != nil {
		t.Fatal(err)
	}
	ppl := trained.HeldOutPerplexity(test.Docs, 10, 5)
	if math.IsNaN(ppl) || ppl <= 1 {
		t.Fatalf("implausible perplexity %g", ppl)
	}
	// A trained model must beat an untrained one on held-out data.
	untrained, err := Train(train, Defaults(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	pplU := untrained.HeldOutPerplexity(test.Docs, 10, 5)
	if ppl >= pplU {
		t.Fatalf("trained ppl %g not below untrained %g", ppl, pplU)
	}
	// And both must beat the uniform bound V.
	if ppl >= float64(c.V) {
		t.Fatalf("trained ppl %g above uniform bound %d", ppl, c.V)
	}
	if inf := trained.HeldOutPerplexity(nil, 5, 1); !math.IsInf(inf, 1) {
		t.Fatal("no-docs perplexity not +inf")
	}
}
