// Benchmarks that regenerate every table and figure of the paper's
// evaluation (quick-size variants; run cmd/warplda-bench for full size),
// plus ablation benchmarks for the design choices DESIGN.md calls out.
//
//	go test -bench=. -benchmem
package warplda

import (
	"testing"

	"warplda/internal/core"
	"warplda/internal/exp"
	"warplda/internal/sampler"
)

// benchExp runs one experiment per benchmark iteration. The reports are
// the artifact; the benchmark time is the cost of regenerating them.
func benchExp(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := exp.Run(id, exp.Options{Quick: true, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Lines) == 0 {
			b.Fatalf("%s produced an empty report", id)
		}
	}
}

func BenchmarkTable2(b *testing.B) { benchExp(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExp(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchExp(b, "table4") }
func BenchmarkFig4(b *testing.B)   { benchExp(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { benchExp(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExp(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExp(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExp(b, "fig8") }
func BenchmarkFig9a(b *testing.B)  { benchExp(b, "fig9a") }
func BenchmarkFig9b(b *testing.B)  { benchExp(b, "fig9b") }
func BenchmarkFig9cd(b *testing.B) { benchExp(b, "fig9cd") }

// --- Ablation benchmarks (DESIGN.md "design choices to ablate") ---

func ablationCorpus(b *testing.B) *Corpus {
	b.Helper()
	c, err := GenerateLDA(SyntheticConfig{
		D: 600, V: 2000, K: 16, MeanLen: 80, Alpha: 0.1, Beta: 0.01, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func benchWarpOptions(b *testing.B, k int, opts core.Options) {
	c := ablationCorpus(b)
	cfg := sampler.PaperDefaults(k)
	cfg.M = 2
	w, err := core.NewWithOptions(c, cfg, opts)
	if err != nil {
		b.Fatal(err)
	}
	w.Iterate() // warm-up
	tokens := c.NumTokens()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Iterate()
	}
	b.ReportMetric(float64(tokens*b.N)/b.Elapsed().Seconds(), "tokens/s")
}

// Hash-table vs dense-array row counters (Section 5.4): at K=4096 with
// short rows the hash table's O(min(K,2L)) clear beats the dense array.
func BenchmarkAblationDenseCounter(b *testing.B) {
	benchWarpOptions(b, 4096, core.Options{DenseThreshold: 1 << 30})
}

func BenchmarkAblationHashCounter(b *testing.B) {
	benchWarpOptions(b, 4096, core.Options{ForceHash: true})
}

// Doc proposal: random positioning (paper's default) vs per-document
// sparse alias table (both O(1) amortized; positioning skips the build).
func BenchmarkAblationDocPositioning(b *testing.B) {
	benchWarpOptions(b, 1024, core.Options{})
}

func BenchmarkAblationDocAlias(b *testing.B) {
	benchWarpOptions(b, 1024, core.Options{DocProposalAlias: true})
}

// Word proposal alias: sparse over non-zero c_w (default) vs dense over
// all K (O(K) per word).
func BenchmarkAblationSparseAlias(b *testing.B) {
	benchWarpOptions(b, 4096, core.Options{})
}

func BenchmarkAblationDenseAlias(b *testing.B) {
	benchWarpOptions(b, 4096, core.Options{DisableSparseAlias: true})
}

// Sorted vs shuffled CSC entry order (Section 5.2's cache-line argument).
func BenchmarkAblationSortedCSC(b *testing.B) {
	benchWarpOptions(b, 1024, core.Options{})
}

func BenchmarkAblationShuffledCSC(b *testing.B) {
	benchWarpOptions(b, 1024, core.Options{ShuffleTokens: true})
}

// End-to-end throughput of the public API's default sampler.
func BenchmarkWarpLDATrainIteration(b *testing.B) {
	c := ablationCorpus(b)
	cfg := Defaults(64)
	s, err := NewSampler(WarpLDA, c, cfg)
	if err != nil {
		b.Fatal(err)
	}
	tokens := c.NumTokens()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Iterate()
	}
	b.ReportMetric(float64(tokens*b.N)/b.Elapsed().Seconds(), "tokens/s")
}
