// Benchmarks that regenerate every table and figure of the paper's
// evaluation (quick-size variants; run cmd/warplda-bench for full size),
// plus ablation benchmarks for the design choices DESIGN.md calls out.
//
//	go test -bench=. -benchmem
package warplda

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"warplda/internal/core"
	"warplda/internal/exp"
	"warplda/internal/infer"
	"warplda/internal/sampler"
)

// benchExp runs one experiment per benchmark iteration. The reports are
// the artifact; the benchmark time is the cost of regenerating them.
func benchExp(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := exp.Run(id, exp.Options{Quick: true, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Lines) == 0 {
			b.Fatalf("%s produced an empty report", id)
		}
	}
}

func BenchmarkTable2(b *testing.B) { benchExp(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExp(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchExp(b, "table4") }
func BenchmarkFig4(b *testing.B)   { benchExp(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { benchExp(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExp(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExp(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExp(b, "fig8") }
func BenchmarkFig9a(b *testing.B)  { benchExp(b, "fig9a") }
func BenchmarkFig9b(b *testing.B)  { benchExp(b, "fig9b") }
func BenchmarkFig9cd(b *testing.B) { benchExp(b, "fig9cd") }

// --- Ablation benchmarks (DESIGN.md "design choices to ablate") ---

func ablationCorpus(b *testing.B) *Corpus {
	b.Helper()
	c, err := GenerateLDA(SyntheticConfig{
		D: 600, V: 2000, K: 16, MeanLen: 80, Alpha: 0.1, Beta: 0.01, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func benchWarpOptions(b *testing.B, k int, opts core.Options) {
	c := ablationCorpus(b)
	cfg := sampler.PaperDefaults(k)
	cfg.M = 2
	w, err := core.NewWithOptions(c, cfg, opts)
	if err != nil {
		b.Fatal(err)
	}
	w.Iterate() // warm-up
	tokens := c.NumTokens()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Iterate()
	}
	b.ReportMetric(float64(tokens*b.N)/b.Elapsed().Seconds(), "tokens/s")
}

// Hash-table vs dense-array row counters (Section 5.4): at K=4096 with
// short rows the hash table's O(min(K,2L)) clear beats the dense array.
func BenchmarkAblationDenseCounter(b *testing.B) {
	benchWarpOptions(b, 4096, core.Options{DenseThreshold: 1 << 30})
}

func BenchmarkAblationHashCounter(b *testing.B) {
	benchWarpOptions(b, 4096, core.Options{ForceHash: true})
}

// Doc proposal: random positioning (paper's default) vs per-document
// sparse alias table (both O(1) amortized; positioning skips the build).
func BenchmarkAblationDocPositioning(b *testing.B) {
	benchWarpOptions(b, 1024, core.Options{})
}

func BenchmarkAblationDocAlias(b *testing.B) {
	benchWarpOptions(b, 1024, core.Options{DocProposalAlias: true})
}

// Word proposal alias: sparse over non-zero c_w (default) vs dense over
// all K (O(K) per word).
func BenchmarkAblationSparseAlias(b *testing.B) {
	benchWarpOptions(b, 4096, core.Options{})
}

func BenchmarkAblationDenseAlias(b *testing.B) {
	benchWarpOptions(b, 4096, core.Options{DisableSparseAlias: true})
}

// Sorted vs shuffled CSC entry order (Section 5.2's cache-line argument).
func BenchmarkAblationSortedCSC(b *testing.B) {
	benchWarpOptions(b, 1024, core.Options{})
}

func BenchmarkAblationShuffledCSC(b *testing.B) {
	benchWarpOptions(b, 1024, core.Options{ShuffleTokens: true})
}

// --- Inference serving benchmarks (internal/infer engine) ---

var inferBench struct {
	sync.Once
	model *Model
	docs  [][]int32
	err   error
}

// inferBenchSetup trains one moderately sized model (K=100) and carves
// out a query batch; shared across the inference benchmarks so the
// training cost is paid once per `go test -bench` process.
func inferBenchSetup(b *testing.B) (*Model, [][]int32) {
	b.Helper()
	inferBench.Do(func() {
		c, err := GenerateLDA(SyntheticConfig{
			D: 1200, V: 4000, K: 100, MeanLen: 80, Alpha: 0.1, Beta: 0.01, Seed: 5,
		})
		if err != nil {
			inferBench.err = err
			return
		}
		cfg := Defaults(100)
		cfg.M = 2
		inferBench.model, inferBench.err = Train(c, cfg, 20)
		inferBench.docs = c.Docs[:256]
	})
	if inferBench.err != nil {
		b.Fatal(inferBench.err)
	}
	return inferBench.model, inferBench.docs
}

const inferBenchSweeps = 20

// BenchmarkInferNaiveGibbs is the pre-engine baseline: one doc at a
// time, O(K) per token (infer.ReferenceGibbs, the single authoritative
// copy of the old Model.DocTopics).
func BenchmarkInferNaiveGibbs(b *testing.B) {
	m, docs := inferBenchSetup(b)
	p := infer.Params{
		V: m.V, K: m.Cfg.K, Alpha: m.Cfg.Alpha, Beta: m.Cfg.Beta,
		Cw: m.Cw, Ck: m.Ck,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, doc := range docs {
			infer.ReferenceGibbs(p, doc, inferBenchSweeps, uint64(j))
		}
	}
	b.ReportMetric(float64(len(docs)*b.N)/b.Elapsed().Seconds(), "docs/s")
}

// BenchmarkInferSequential is the engine-backed Model.DocTopics loop:
// one doc at a time, O(1) per token, single goroutine.
func BenchmarkInferSequential(b *testing.B) {
	m, docs := inferBenchSetup(b)
	m.DocTopics(docs[0], 1, 0) // force the lazy engine build out of the timing
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, doc := range docs {
			m.DocTopics(doc, inferBenchSweeps, uint64(j))
		}
	}
	b.ReportMetric(float64(len(docs)*b.N)/b.Elapsed().Seconds(), "docs/s")
}

// BenchmarkInferBatched is the serving path: the whole batch sharded
// across the engine's worker pool (GOMAXPROCS workers).
func BenchmarkInferBatched(b *testing.B) {
	m, docs := inferBenchSetup(b)
	eng, err := NewInferEngine(m, InferOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.InferBatch(docs, inferBenchSweeps, 42); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(docs)*b.N)/b.Elapsed().Seconds(), "docs/s")
}

// End-to-end throughput of the public API's default sampler.
func BenchmarkWarpLDATrainIteration(b *testing.B) {
	c := ablationCorpus(b)
	cfg := Defaults(64)
	s, err := NewSampler(WarpLDA, c, cfg)
	if err != nil {
		b.Fatal(err)
	}
	tokens := c.NumTokens()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Iterate()
	}
	b.ReportMetric(float64(tokens*b.N)/b.Elapsed().Seconds(), "tokens/s")
}

// --- BenchmarkSample*: the hot-path family the bench-regression CI
// lane tracks (go test -bench=BenchmarkSample -benchtime=3x -count=3,
// post-processed by cmd/bench-ci into BENCH_<sha>.json and gated
// against ci/bench-baseline.json). Keep names stable: the baseline is
// keyed by them. ---

// sampleBenchCorpus is larger than the ablation corpus so per-iteration
// time dominates setup even at -benchtime=3x.
func sampleBenchCorpus(b *testing.B) *Corpus {
	b.Helper()
	c, err := GenerateLDA(SyntheticConfig{
		D: 2000, V: 5000, K: 32, MeanLen: 120, Alpha: 0.1, Beta: 0.01, Seed: 17,
	})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func benchSample(b *testing.B, p CorpusProvider, threads int) {
	b.Helper()
	cfg := Defaults(128)
	cfg.M = 2
	cfg.Threads = threads
	s, err := NewSampler(WarpLDA, p, cfg)
	if err != nil {
		b.Fatal(err)
	}
	s.Iterate() // warm-up
	tokens := p.NumTokens()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Iterate()
	}
	b.ReportMetric(float64(tokens*b.N)/b.Elapsed().Seconds(), "tokens/s")
}

// BenchmarkSampleWarp is the headline serial sampling throughput.
func BenchmarkSampleWarp(b *testing.B) {
	benchSample(b, sampleBenchCorpus(b), 1)
}

// BenchmarkSampleWarpThreaded tracks the parallel phase machinery.
func BenchmarkSampleWarpThreaded(b *testing.B) {
	benchSample(b, sampleBenchCorpus(b), 4)
}

// BenchmarkSampleWarpScaling is the thread-scaling matrix the
// thread-scaling CI lane records: the same corpus sampled at 1, 2, 4,
// and 8 threads. cmd/bench-ci recognizes the /threads=N sub-benchmark
// names, folds them into a speedup-vs-threads curve in BENCH_<sha>.json,
// and gates the curve (absolute -min-speedup floors, armed only on
// runners with enough cores, plus regression against the baseline's
// curve). See docs/PERFORMANCE.md.
func BenchmarkSampleWarpScaling(b *testing.B) {
	c := sampleBenchCorpus(b)
	for _, th := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", th), func(b *testing.B) {
			benchSample(b, c, th)
		})
	}
}

// BenchmarkSampleMappedCorpus is the out-of-core path: identical
// sampling over a memory-mapped .warpcorpus, so a page-cache-hostile
// regression in the mapped Doc path shows up next to the in-memory
// number it should match.
func BenchmarkSampleMappedCorpus(b *testing.B) {
	c := sampleBenchCorpus(b)
	dir := b.TempDir()
	var uci bytes.Buffer
	if err := WriteUCI(&uci, c); err != nil {
		b.Fatal(err)
	}
	path := CorpusCachePath("bench.uci", dir)
	if _, err := BuildCorpusCache(&uci, path, CorpusStreamOptions{}); err != nil {
		b.Fatal(err)
	}
	mc, err := OpenMappedCorpus(path)
	if err != nil {
		b.Fatal(err)
	}
	defer mc.Close()
	benchSample(b, mc, 1)
}

// BenchmarkSampleIngest tracks streaming ingestion itself: UCI bytes →
// spill → assembled cache, in tokens/s of cache build throughput.
func BenchmarkSampleIngest(b *testing.B) {
	c := sampleBenchCorpus(b)
	var uci bytes.Buffer
	if err := WriteUCI(&uci, c); err != nil {
		b.Fatal(err)
	}
	data := uci.Bytes()
	dir := b.TempDir()
	tokens := c.NumTokens()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := CorpusCachePath("ingest.uci", dir)
		if _, err := BuildCorpusCache(bytes.NewReader(data), path, CorpusStreamOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tokens*b.N)/b.Elapsed().Seconds(), "tokens/s")
}
