package warplda

import (
	"sync"

	"warplda/internal/infer"
)

// InferEngine answers fold-in queries against a frozen trained model in
// O(1) per token: per-word sparse alias tables over Φ̂ are precomputed
// once at construction and amortized across all requests, and
// InferBatch shards document batches across a worker pool. Engines are
// safe for concurrent use. See NewInferEngine.
type InferEngine = infer.Engine

// InferOptions tune an InferEngine (MH steps per token, worker-pool
// size). The zero value picks sensible defaults.
type InferOptions = infer.Options

// NewInferEngine builds a reusable inference engine over m. The engine
// retains m's count matrices; do not mutate them while it is in use.
// Construction is O(V·K) — build one engine per model and reuse it, as
// cmd/warplda-serve does.
func NewInferEngine(m *Model, opts InferOptions) (*InferEngine, error) {
	return infer.NewEngine(infer.Params{
		V: m.V, K: m.Cfg.K,
		Alpha: m.Cfg.Alpha, Beta: m.Cfg.Beta,
		Cw: m.Cw, Ck: m.Ck,
	}, opts)
}

// inferEngineMu guards the cached-engine pointer below. Package-level
// so Model carries no lock and stays copyable. The lock is held only
// for the pointer load/store — never across the O(V·K) build — so
// models cannot stall each other; the remaining per-call cost is one
// uncontended mutex round trip. Callers answering heavy concurrent
// query traffic should hold their own engine (NewInferEngine), as
// cmd/warplda-serve does.
var inferEngineMu sync.Mutex

// inferEngine lazily builds and caches the engine backing
// Model.DocTopics and Model.HeldOutPerplexity. Concurrent first calls
// may each build an engine; one wins the cache and the others are
// dropped (engines are stateless, so any copy is interchangeable).
// Construction errors are not cached: a caller that fixes the model's
// fields gets a working engine on the next call.
func (m *Model) inferEngine() (*InferEngine, error) {
	inferEngineMu.Lock()
	eng := m.inferEng
	inferEngineMu.Unlock()
	if eng != nil {
		return eng, nil
	}
	built, err := NewInferEngine(m, InferOptions{})
	if err != nil {
		return nil, err
	}
	inferEngineMu.Lock()
	if m.inferEng == nil {
		m.inferEng = built
	}
	eng = m.inferEng
	inferEngineMu.Unlock()
	return eng, nil
}
