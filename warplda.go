// Package warplda is a pure-Go implementation of WarpLDA (Chen, Li, Zhu
// & Chen, VLDB 2016): a cache-efficient O(1)-per-token Metropolis–
// Hastings sampler for Latent Dirichlet Allocation, together with the
// baseline samplers the paper evaluates against (collapsed Gibbs,
// SparseLDA, AliasLDA, F+LDA, LightLDA).
//
// Quick start:
//
//	c := warplda.GenerateLDA(warplda.SyntheticConfig{D: 1000, V: 2000, K: 20, MeanLen: 100, Seed: 1})
//	model, err := warplda.Train(c, warplda.Defaults(20), 100)
//	words := model.TopWords(0, 10) // top words of topic 0
//
// The package is a facade: the algorithms live in internal packages and
// are re-exported here through type aliases, so this is the only import
// a downstream user needs.
package warplda

import (
	"fmt"
	"io"
	"sort"

	"warplda/internal/baselines"
	"warplda/internal/cluster"
	"warplda/internal/core"
	"warplda/internal/corpus"
	"warplda/internal/eval"
	"warplda/internal/sampler"
	"warplda/internal/train"
)

// Corpus is a tokenized bag-of-words document collection.
type Corpus = corpus.Corpus

// CorpusProvider is the read-only document-access interface every
// training entry point accepts: *Corpus (in-memory) and *MappedCorpus
// (memory-mapped out-of-core cache) both satisfy it.
type CorpusProvider = corpus.Provider

// MappedCorpus is a corpus memory-mapped from a .warpcorpus cache file:
// its token array lives in page cache, so corpus size is bounded by
// disk, not RAM.
type MappedCorpus = corpus.MappedCorpus

// CorpusStreamOptions tunes the streaming cache builder; CorpusCacheInfo
// describes a built or opened cache.
type (
	CorpusStreamOptions = corpus.StreamOptions
	CorpusCacheInfo     = corpus.CacheInfo
)

// Stats summarizes a corpus (D, T, V, T/D).
type Stats = corpus.Stats

// SyntheticConfig parameterizes the LDA-generative synthetic corpus
// generator.
type SyntheticConfig = corpus.SyntheticConfig

// TokenizeOptions configures FromText.
type TokenizeOptions = corpus.TokenizeOptions

// Config carries sampler hyper-parameters (K, α, β, MH steps, seed,
// threads).
type Config = sampler.Config

// Sampler is one LDA inference algorithm bound to a corpus.
type Sampler = sampler.Sampler

// Run is the recorded trace of a training run; Point is one evaluation.
type (
	Run   = sampler.Run
	Point = sampler.Point
)

// Defaults returns the paper's hyper-parameters for k topics:
// α = 50/k, β = 0.01, M = 1.
func Defaults(k int) Config { return sampler.PaperDefaults(k) }

// GenerateLDA draws a synthetic corpus from the LDA generative process.
func GenerateLDA(cfg SyntheticConfig) (*Corpus, error) { return corpus.GenerateLDA(cfg) }

// GenerateZipf draws a corpus with Zipf word frequencies (no topic
// structure); useful for systems experiments.
func GenerateZipf(d, v int, meanLen, s float64, seed uint64) *Corpus {
	return corpus.GenerateZipf(d, v, meanLen, s, seed)
}

// ReadUCI parses the UCI bag-of-words format, materializing the corpus
// in memory. For corpora near or beyond RAM, use BuildCorpusCache +
// OpenMappedCorpus (the -stream path of cmd/warplda-train).
func ReadUCI(r io.Reader) (*Corpus, error) { return corpus.ReadUCI(r) }

// BuildCorpusCache streams a UCI docword file into a .warpcorpus cache
// in bounded memory (token and doc-boundary arrays spill to disk as
// they are parsed; the final file is CRC32-trailed and atomically
// renamed). Entries must carry non-decreasing doc ids, the order UCI
// distributions ship in.
func BuildCorpusCache(docword io.Reader, cachePath string, opts CorpusStreamOptions) (*CorpusCacheInfo, error) {
	return corpus.BuildCache(docword, cachePath, opts)
}

// OpenMappedCorpus maps a .warpcorpus cache read-only, verifying its
// checksum and every structural invariant before returning.
func OpenMappedCorpus(path string) (*MappedCorpus, error) { return corpus.OpenMapped(path) }

// CorpusCachePath returns the conventional cache path for a docword
// source file: <cacheDir>/<base(source)>.warpcorpus (cacheDir ""
// means the source's directory).
func CorpusCachePath(sourcePath, cacheDir string) string {
	return corpus.CachePathFor(sourcePath, cacheDir)
}

// MaterializeCorpus copies any provider into an in-memory *Corpus (a
// *Corpus is returned as-is). The baseline samplers need it; WarpLDA
// and the evaluator work on any provider directly.
func MaterializeCorpus(p CorpusProvider) *Corpus { return corpus.Materialize(p) }

// CorpusStats summarizes any provider the way Corpus.Stats does.
func CorpusStats(p CorpusProvider) Stats { return corpus.StatsOf(p) }

// WriteUCI serializes a corpus in UCI bag-of-words format.
func WriteUCI(w io.Writer, c *Corpus) error { return corpus.WriteUCI(w, c) }

// ReadVocab reads a one-word-per-line vocabulary file.
func ReadVocab(r io.Reader) ([]string, error) { return corpus.ReadVocab(r) }

// FromText tokenizes raw documents into a corpus.
func FromText(docs []string, opts TokenizeOptions) *Corpus { return corpus.FromText(docs, opts) }

// Algorithm names accepted by NewSampler.
const (
	WarpLDA   = "warplda"
	CGS       = "cgs"
	SparseLDA = "sparselda"
	AliasLDA  = "aliaslda"
	FPlusLDA  = "flda"
	LightLDA  = "lightlda"
	// Distributed is the physically sharded WarpLDA of Section 5.3;
	// cfg.Threads is its worker/shard count. It is constructible by name
	// but kept out of Algorithms, which is the paper's shared-memory
	// comparison set (Table 2).
	Distributed = "distributed"
)

// Algorithms lists the paper's comparison-set sampler names.
var Algorithms = []string{WarpLDA, CGS, SparseLDA, AliasLDA, FPlusLDA, LightLDA}

// NewSampler constructs the named inference algorithm over c. WarpLDA
// runs against any provider — including a mapped out-of-core corpus —
// directly; the baselines and the sharded sampler index [][]int32
// internally, so a non-*Corpus provider is materialized into heap for
// them (use warplda with -stream corpora to stay out-of-core).
func NewSampler(name string, c CorpusProvider, cfg Config) (Sampler, error) {
	switch name {
	case WarpLDA:
		return core.New(c, cfg)
	case CGS:
		return baselines.NewCGS(corpus.Materialize(c), cfg)
	case SparseLDA:
		return baselines.NewSparseLDA(corpus.Materialize(c), cfg)
	case AliasLDA:
		return baselines.NewAliasLDA(corpus.Materialize(c), cfg)
	case FPlusLDA:
		return baselines.NewFPlusLDA(corpus.Materialize(c), cfg)
	case LightLDA:
		return baselines.NewLightLDA(corpus.Materialize(c), cfg, baselines.LightLDAOptions{})
	case Distributed:
		workers := cfg.Threads
		if workers < 1 {
			workers = 1
		}
		return cluster.NewDistributed(corpus.Materialize(c), cfg, workers)
	default:
		return nil, fmt.Errorf("warplda: unknown algorithm %q (have %v)", name, append(Algorithms, Distributed))
	}
}

// NewDistributed constructs the physically sharded WarpLDA sampler of
// the paper's Section 5.3: workers own disjoint token shards and
// exchange them between the word and doc phases. On a single machine it
// behaves like NewSampler(WarpLDA, ...) with extra coordination; it
// exists for studying the distributed execution model.
func NewDistributed(c *Corpus, cfg Config, workers int) (Sampler, error) {
	return cluster.NewDistributed(c, cfg, workers)
}

// TrainSampler runs iters iterations of s, evaluating log-likelihood
// every evalEvery iterations, and returns the convergence trace.
func TrainSampler(s Sampler, c CorpusProvider, cfg Config, iters, evalEvery int) Run {
	return sampler.Train(s, c, cfg, iters, evalEvery)
}

// TrainOptions configures an orchestrated (checkpointed, budgeted,
// interruptible) training run; TrainResult describes how it ended and
// TrainEvent is the per-iteration progress callback payload.
type (
	TrainOptions = train.Options
	TrainResult  = train.Result
	TrainEvent   = train.Event
)

// Checkpoint is a resumable training snapshot: configuration, loop
// progress, convergence trace, corpus fingerprint, and the sampler's
// complete serialized state.
type Checkpoint = train.Checkpoint

// TrainCheckpointed runs the internal/train orchestrator: train s on c
// until opts.Iters iterations complete, the wall-clock budget runs out,
// or a stop is requested, writing CRC-checksummed, atomically-renamed
// checkpoints along the way. A run resumed from one of its checkpoints
// (opts.ResumeFrom) produces bit-identical assignments and
// log-likelihood trace to a run that was never interrupted.
func TrainCheckpointed(s Sampler, c CorpusProvider, cfg Config, opts TrainOptions) (TrainResult, error) {
	return train.Run(s, c, cfg, opts)
}

// LoadCheckpoint reads a checkpoint file (or the default checkpoint of
// a checkpoint directory), verifying its checksum.
func LoadCheckpoint(path string) (*Checkpoint, error) { return train.Load(path) }

// PublishModelPath resolves a "<model-dir>/<name>" publish spec to the
// snapshot path the serving registry (cmd/warplda-serve) loads for
// model <name>.
func PublishModelPath(spec string) (path, name string, err error) {
	return train.PublishPath(spec)
}

// PublishModelVersionPath resolves a publish spec to the
// iteration-stamped snapshot path and registry name <name>@<iter> —
// the pinned version a registry can roll back to.
func PublishModelVersionPath(spec string, iter int) (path, name string, err error) {
	return train.VersionedPublishPath(spec, iter)
}

// PublishModelLatest atomically points the bare <name>.bin the
// registry serves as <name> at the already-published <name>@<iter>.bin
// snapshot; a watching warplda-serve hot-reloads the swap without a
// restart. It returns the pointer's path.
func PublishModelLatest(spec string, iter int) (string, error) {
	return train.PublishLatest(spec, iter)
}

// PruneModelVersions deletes a publish target's oldest pinned
// <name>@<iter>.bin snapshots, keeping the newest keep versions plus —
// always — the one the latest pointer targets. It returns the removed
// paths.
func PruneModelVersions(spec string, keep int) ([]string, error) {
	return train.PrunePublishedVersions(spec, keep)
}

// ListCheckpoints returns the iteration-stamped checkpoints retained in
// a checkpoint directory (oldest first), each entry naming its path and
// whether it is a sharded (manifest + shard files) checkpoint. See
// docs/FORMATS.md for both on-disk shapes.
func ListCheckpoints(dir string) ([]train.CheckpointEntry, error) {
	return train.ListCheckpoints(dir)
}

// LogLikelihood computes log p(W, Z | α, β) for the sampler's current
// state.
func LogLikelihood(c CorpusProvider, s Sampler, cfg Config) float64 {
	return eval.LogJoint(c, s.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
}

// Model is a trained LDA model: the MAP point estimates of Eq. 4 derived
// from the final assignment counts.
type Model struct {
	Cfg    Config
	V      int
	Vocab  []string // may be nil
	Cw     []int32  // V×K word-topic counts
	Ck     []int64  // K global topic counts
	LogLik float64

	// Lazily built fold-in engine backing DocTopics; see infer_facade.go.
	// A plain pointer (guarded by a package-level mutex) rather than a
	// sync.Once so Model stays copyable.
	inferEng *InferEngine
}

// Train runs WarpLDA for iters iterations over c with the paper's
// defaults in cfg and returns the trained model.
func Train(c *Corpus, cfg Config, iters int) (*Model, error) {
	s, err := NewSampler(WarpLDA, c, cfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < iters; i++ {
		s.Iterate()
	}
	return Snapshot(c, s, cfg), nil
}

// Snapshot extracts a Model from any sampler's current state. c may be
// any provider; a mapped corpus carries no vocabulary, so set
// Model.Vocab afterwards when one was loaded separately.
func Snapshot(c CorpusProvider, s Sampler, cfg Config) *Model {
	v := c.NumWords()
	m := &Model{
		Cfg:   cfg,
		V:     v,
		Vocab: c.Vocabulary(),
		Cw:    make([]int32, v*cfg.K),
		Ck:    make([]int64, cfg.K),
	}
	z := s.Assignments()
	for d, nd := 0, c.NumDocs(); d < nd; d++ {
		for n, w := range c.Doc(d) {
			t := z[d][n]
			m.Cw[int(w)*cfg.K+int(t)]++
			m.Ck[t]++
		}
	}
	m.LogLik = eval.LogJoint(c, z, cfg.K, cfg.Alpha, cfg.Beta)
	return m
}

// SizeBytes estimates the resident memory of the model's count
// matrices and vocabulary. Serving layers (internal/registry) use it,
// together with InferEngine.MemoryBytes, to enforce an LRU byte budget
// across co-resident models; it is an accounting estimate, not an exact
// allocator measurement.
func (m *Model) SizeBytes() int64 {
	n := int64(len(m.Cw))*4 + int64(len(m.Ck))*8
	for _, w := range m.Vocab {
		// String header (pointer+len) plus payload.
		n += int64(len(w)) + 16
	}
	return n
}

// Phi returns the MAP estimate φ̂_wk = (C_wk+β)/(C_k+β̄) for one word and
// topic.
func (m *Model) Phi(w, k int) float64 {
	betaBar := m.Cfg.Beta * float64(m.V)
	return (float64(m.Cw[w*m.Cfg.K+k]) + m.Cfg.Beta) / (float64(m.Ck[k]) + betaBar)
}

// TopWords returns the n most probable words of topic k, as vocabulary
// strings when the corpus had a vocabulary and as "word<id>" otherwise.
func (m *Model) TopWords(k, n int) []string {
	type ws struct {
		w int
		p float64
	}
	all := make([]ws, m.V)
	for w := 0; w < m.V; w++ {
		all[w] = ws{w, float64(m.Cw[w*m.Cfg.K+k])}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].p > all[b].p })
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		if m.Vocab != nil {
			out[i] = m.Vocab[all[i].w]
		} else {
			out[i] = fmt.Sprintf("word%d", all[i].w)
		}
	}
	return out
}

// TopicDiag holds per-topic health diagnostics; see Model.Diagnostics.
type TopicDiag = eval.TopicDiag

// Diagnostics returns per-topic diagnostics (token mass, distinct and
// effective word counts, top-word concentration, distance from the
// corpus distribution) — the screening one runs before trusting topics
// from a large-K model.
func (m *Model) Diagnostics() []TopicDiag {
	return eval.Diagnostics(m.Cw, m.V, m.Cfg.K, m.Cfg.Beta)
}

// Coherence returns the UMass topic-coherence score of topic k, computed
// from the top-n words' document co-occurrences in c. Higher (closer to
// zero) is better; use it to compare runs or detect junk topics.
func (m *Model) Coherence(c *Corpus, k, n int) float64 {
	top := eval.TopWordsByCount(m.Cw, m.V, m.Cfg.K, k, n)
	return eval.UMassCoherence(c, top)
}

// DocTopics infers the topic mixture θ̂ of an (unseen or training)
// document by folding in: a few MH sweeps over the document's tokens
// against the frozen model, O(1) per token. It is a thin wrapper around
// the InferEngine the model builds lazily on first use; callers
// answering many queries (or wanting batching) should build the engine
// themselves with NewInferEngine. It panics on word ids outside
// [0, m.V) — as the pre-engine Gibbs implementation did — and on
// models whose exported fields are inconsistent (non-positive priors,
// count slices not sized V×K / K).
func (m *Model) DocTopics(doc []int32, sweeps int, seed uint64) []float64 {
	if len(doc) == 0 {
		// Uniform, without paying the engine build — the pre-engine
		// behavior for empty documents.
		theta := make([]float64, m.Cfg.K)
		for i := range theta {
			theta[i] = 1 / float64(m.Cfg.K)
		}
		return theta
	}
	eng, err := m.inferEngine()
	if err == nil {
		var theta []float64
		theta, err = eng.Infer(doc, sweeps, seed)
		if err == nil {
			return theta
		}
	}
	panic(fmt.Sprintf("warplda: DocTopics: %v", err))
}
