package warplda

import "warplda/internal/rng"

// newFoldInRNG returns the random source used by Split. Isolated here
// so the public file stays free of internal imports beyond the facade.
func newFoldInRNG(seed uint64) *rng.RNG { return rng.New(seed) }
